//! Partitioners: round-robin for record-based parallelism, deterministic
//! hash partitioning and `group_by_key` for model-based parallelism.

use std::collections::HashMap;
use std::hash::Hash;

/// Deterministic 64-bit FNV-1a hash.
///
/// The engine never uses `std`'s randomized `RandomState` for partitioning:
/// task placement must be reproducible run-to-run so quality results are
/// bit-for-bit deterministic at any parallelism degree.
///
/// # Examples
///
/// ```
/// use diststream_engine::fnv1a_hash;
/// assert_eq!(fnv1a_hash(b"abc"), fnv1a_hash(b"abc"));
/// assert_ne!(fnv1a_hash(b"abc"), fnv1a_hash(b"abd"));
/// ```
pub fn fnv1a_hash(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Incremental FNV-1a hasher.
///
/// FNV-1a folds one byte at a time, so feeding a value in chunks produces
/// the same hash as feeding the concatenated bytes — which lets hot paths
/// hash composite keys (e.g. a grid cell's coordinate vector) without
/// materializing an intermediate byte buffer.
///
/// # Examples
///
/// ```
/// use diststream_engine::{fnv1a_hash, Fnv1a};
///
/// let mut h = Fnv1a::new();
/// h.write(b"ab");
/// h.write(b"c");
/// assert_eq!(h.finish(), fnv1a_hash(b"abc"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Folds `bytes` into the hash state.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Splits records across `p` tasks in round-robin order (§V-A).
///
/// The paper assigns "incoming records with different timestamps into
/// different tasks in a round-robin way ... to facilitate the goal of
/// maintaining the relative orders between the input data records and the
/// output micro-cluster results": element `i` goes to partition `i % p`, so
/// each partition individually preserves arrival order and the original
/// order is recoverable by interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobinPartitioner;

impl RoundRobinPartitioner {
    /// Splits `items` into `partitions` round-robin partitions.
    ///
    /// Every partition preserves the relative order of its items. When
    /// `items.len() < partitions` the trailing partitions are empty.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use diststream_engine::RoundRobinPartitioner;
    /// let parts = RoundRobinPartitioner.split(vec![1, 2, 3, 4, 5], 2);
    /// assert_eq!(parts, vec![vec![1, 3, 5], vec![2, 4]]);
    /// ```
    pub fn split<T>(&self, items: Vec<T>, partitions: usize) -> Vec<Vec<T>> {
        assert!(partitions > 0, "partition count must be at least 1");
        let per = items.len() / partitions + 1;
        #[cfg(feature = "debug_invariants")]
        let input_len = items.len();
        let mut out: Vec<Vec<T>> = (0..partitions).map(|_| Vec::with_capacity(per)).collect();
        for (i, item) in items.into_iter().enumerate() {
            out[i % partitions].push(item);
        }
        #[cfg(feature = "debug_invariants")]
        assert_eq!(
            out.iter().map(Vec::len).sum::<usize>(),
            input_len,
            "debug_invariants: round-robin split lost or duplicated items",
        );
        out
    }

    /// Reassembles round-robin partitions back into the original order —
    /// the inverse of [`RoundRobinPartitioner::split`].
    ///
    /// # Examples
    ///
    /// ```
    /// use diststream_engine::RoundRobinPartitioner;
    /// let parts = RoundRobinPartitioner.split(vec![1, 2, 3, 4, 5], 3);
    /// assert_eq!(RoundRobinPartitioner.interleave(parts), vec![1, 2, 3, 4, 5]);
    /// ```
    pub fn interleave<T>(&self, partitions: Vec<Vec<T>>) -> Vec<T> {
        let total: usize = partitions.iter().map(Vec::len).sum();
        let mut iters: Vec<std::vec::IntoIter<T>> =
            partitions.into_iter().map(Vec::into_iter).collect();
        let mut out = Vec::with_capacity(total);
        'outer: loop {
            let mut advanced = false;
            for it in &mut iters {
                if let Some(item) = it.next() {
                    out.push(item);
                    advanced = true;
                }
            }
            if !advanced {
                break 'outer;
            }
        }
        out
    }
}

/// Hash-partitions keyed items deterministically across `p` partitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashPartitioner;

impl HashPartitioner {
    /// The partition index for `key` out of `partitions`.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn partition_of<K: KeyBytes>(&self, key: &K, partitions: usize) -> usize {
        assert!(partitions > 0, "partition count must be at least 1");
        (fnv1a_hash(&key.key_bytes()) % partitions as u64) as usize
    }
}

/// Keys that can expose stable bytes for deterministic hashing.
///
/// Implemented for the integer key types the framework shuffles on. (The
/// blanket `Hash` trait is unusable here because `std`'s hasher seeds are
/// randomized per-process.)
pub trait KeyBytes {
    /// A stable byte representation of the key.
    fn key_bytes(&self) -> Vec<u8>;
}

impl KeyBytes for u64 {
    fn key_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl KeyBytes for u32 {
    fn key_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl KeyBytes for usize {
    fn key_bytes(&self) -> Vec<u8> {
        (*self as u64).to_le_bytes().to_vec()
    }
}

impl KeyBytes for (u64, u64) {
    fn key_bytes(&self) -> Vec<u8> {
        let mut v = self.0.to_le_bytes().to_vec();
        v.extend_from_slice(&self.1.to_le_bytes());
        v
    }
}

/// Groups `(key, value)` pairs by key and assigns each group to one of
/// `partitions` shuffle partitions — the `groupByKey` step of model-based
/// parallelism (§V-B).
///
/// Within a partition, groups appear in first-occurrence order of their key
/// and values keep their input order, so the result is fully deterministic.
///
/// Accepts any `(key, value)` iterator, so callers can feed a drained scratch
/// buffer (`buf.drain(..)`) and keep its capacity across batches instead of
/// rebuilding a `Vec` every time.
///
/// # Panics
///
/// Panics if `partitions` is zero.
///
/// # Examples
///
/// ```
/// use diststream_engine::group_by_key;
///
/// let pairs = vec![(1u64, "a"), (2, "b"), (1, "c")];
/// let parts = group_by_key(pairs, 1);
/// assert_eq!(parts[0], vec![(1, vec!["a", "c"]), (2, vec!["b"])]);
/// ```
pub fn group_by_key<K, V>(
    pairs: impl IntoIterator<Item = (K, V)>,
    partitions: usize,
) -> Vec<Vec<(K, Vec<V>)>>
where
    K: Eq + Hash + Clone + KeyBytes,
{
    assert!(partitions > 0, "partition count must be at least 1");
    let partitioner = HashPartitioner;
    #[cfg(feature = "debug_invariants")]
    let mut input_len = 0usize;
    // key -> (partition, position within partition)
    let mut slots: HashMap<K, (usize, usize)> = HashMap::new();
    let mut out: Vec<Vec<(K, Vec<V>)>> = (0..partitions).map(|_| Vec::new()).collect();
    for (key, value) in pairs {
        #[cfg(feature = "debug_invariants")]
        {
            input_len += 1;
        }
        match slots.get(&key) {
            Some(&(p, idx)) => out[p][idx].1.push(value),
            None => {
                let p = partitioner.partition_of(&key, partitions);
                let idx = out[p].len();
                out[p].push((key.clone(), vec![value]));
                slots.insert(key, (p, idx));
            }
        }
    }
    #[cfg(feature = "debug_invariants")]
    {
        // Completeness: every input value lands in exactly one group, and
        // no key appears in two partitions (slots guarantees both; this
        // catches regressions if the bookkeeping is ever rewritten).
        let value_count: usize = out
            .iter()
            .flat_map(|part| part.iter().map(|(_, vs)| vs.len()))
            .sum();
        assert_eq!(
            value_count, input_len,
            "debug_invariants: group_by_key lost or duplicated values",
        );
        let mut seen_keys = std::collections::BTreeSet::new();
        for (key, _) in out.iter().flatten() {
            assert!(
                seen_keys.insert(fnv1a_hash(&key.key_bytes())),
                "debug_invariants: group_by_key emitted a key twice",
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_preserves_relative_order() {
        let parts = RoundRobinPartitioner.split((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn round_robin_more_partitions_than_items() {
        let parts = RoundRobinPartitioner.split(vec![1, 2], 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], vec![1]);
        assert_eq!(parts[1], vec![2]);
        assert!(parts[2].is_empty() && parts[3].is_empty());
    }

    #[test]
    #[should_panic(expected = "partition count")]
    fn round_robin_zero_partitions_panics() {
        let _ = RoundRobinPartitioner.split(vec![1], 0);
    }

    #[test]
    fn interleave_inverts_split() {
        let items: Vec<u32> = (0..17).collect();
        for p in 1..6 {
            let parts = RoundRobinPartitioner.split(items.clone(), p);
            assert_eq!(RoundRobinPartitioner.interleave(parts), items);
        }
    }

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        for key in 0u64..100 {
            let p = HashPartitioner.partition_of(&key, 7);
            assert!(p < 7);
            assert_eq!(p, HashPartitioner.partition_of(&key, 7));
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let mut counts = vec![0usize; 4];
        for key in 0u64..1000 {
            counts[HashPartitioner.partition_of(&key, 4)] += 1;
        }
        for &c in &counts {
            assert!(c > 150, "partition unexpectedly starved: {counts:?}");
        }
    }

    #[test]
    fn group_by_key_groups_values_in_order() {
        let pairs = vec![(5u64, 1), (3, 2), (5, 3), (3, 4), (9, 5)];
        let parts = group_by_key(pairs, 2);
        let all: Vec<(u64, Vec<i32>)> = parts.into_iter().flatten().collect();
        let five = all.iter().find(|(k, _)| *k == 5).unwrap();
        assert_eq!(five.1, vec![1, 3]);
        let three = all.iter().find(|(k, _)| *k == 3).unwrap();
        assert_eq!(three.1, vec![2, 4]);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn group_by_key_single_partition_keeps_first_seen_order() {
        let pairs = vec![(2u64, "x"), (1, "y"), (2, "z")];
        let parts = group_by_key(pairs, 1);
        let keys: Vec<u64> = parts[0].iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 1]);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a_hash(b""), 0xcbf2_9ce4_8422_2325);
    }

    proptest! {
        #[test]
        fn prop_split_conserves_items(items in prop::collection::vec(0u32..1000, 0..200), p in 1usize..8) {
            let parts = RoundRobinPartitioner.split(items.clone(), p);
            let mut collected: Vec<u32> = parts.iter().flatten().copied().collect();
            let mut expected = items.clone();
            collected.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(collected, expected);
        }

        #[test]
        fn prop_group_by_key_conserves_values(
            pairs in prop::collection::vec((0u64..20, 0i32..1000), 0..200),
            p in 1usize..6,
        ) {
            let parts = group_by_key(pairs.clone(), p);
            let mut collected: Vec<i32> = parts.iter().flatten().flat_map(|(_, vs)| vs.iter().copied()).collect();
            let mut expected: Vec<i32> = pairs.iter().map(|&(_, v)| v).collect();
            collected.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(collected, expected);
        }

        #[test]
        fn prop_group_by_key_each_key_once(
            pairs in prop::collection::vec((0u64..20, 0i32..1000), 0..200),
            p in 1usize..6,
        ) {
            let parts = group_by_key(pairs, p);
            let mut seen = std::collections::HashSet::new();
            for (k, _) in parts.iter().flatten() {
                prop_assert!(seen.insert(*k), "key {} appeared in two groups", k);
            }
        }
    }
}

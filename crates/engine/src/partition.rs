//! Partitioners: round-robin for record-based parallelism, deterministic
//! hash partitioning and `group_by_key` for model-based parallelism.

use std::collections::HashMap;
use std::hash::Hash;

/// Deterministic 64-bit FNV-1a hash.
///
/// The engine never uses `std`'s randomized `RandomState` for partitioning:
/// task placement must be reproducible run-to-run so quality results are
/// bit-for-bit deterministic at any parallelism degree.
///
/// # Examples
///
/// ```
/// use diststream_engine::fnv1a_hash;
/// assert_eq!(fnv1a_hash(b"abc"), fnv1a_hash(b"abc"));
/// assert_ne!(fnv1a_hash(b"abc"), fnv1a_hash(b"abd"));
/// ```
pub fn fnv1a_hash(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Incremental FNV-1a hasher.
///
/// FNV-1a folds one byte at a time, so feeding a value in chunks produces
/// the same hash as feeding the concatenated bytes — which lets hot paths
/// hash composite keys (e.g. a grid cell's coordinate vector) without
/// materializing an intermediate byte buffer.
///
/// # Examples
///
/// ```
/// use diststream_engine::{fnv1a_hash, Fnv1a};
///
/// let mut h = Fnv1a::new();
/// h.write(b"ab");
/// h.write(b"c");
/// assert_eq!(h.finish(), fnv1a_hash(b"abc"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Folds `bytes` into the hash state.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Splits records across `p` tasks in round-robin order (§V-A).
///
/// The paper assigns "incoming records with different timestamps into
/// different tasks in a round-robin way ... to facilitate the goal of
/// maintaining the relative orders between the input data records and the
/// output micro-cluster results": element `i` goes to partition `i % p`, so
/// each partition individually preserves arrival order and the original
/// order is recoverable by interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobinPartitioner;

impl RoundRobinPartitioner {
    /// Splits `items` into `partitions` round-robin partitions.
    ///
    /// Every partition preserves the relative order of its items. When
    /// `items.len() < partitions` the trailing partitions are empty.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use diststream_engine::RoundRobinPartitioner;
    /// let parts = RoundRobinPartitioner.split(vec![1, 2, 3, 4, 5], 2);
    /// assert_eq!(parts, vec![vec![1, 3, 5], vec![2, 4]]);
    /// ```
    pub fn split<T>(&self, items: Vec<T>, partitions: usize) -> Vec<Vec<T>> {
        assert!(partitions > 0, "partition count must be at least 1");
        let per = items.len() / partitions + 1;
        #[cfg(feature = "debug_invariants")]
        let input_len = items.len();
        let mut out: Vec<Vec<T>> = (0..partitions).map(|_| Vec::with_capacity(per)).collect();
        for (i, item) in items.into_iter().enumerate() {
            out[i % partitions].push(item);
        }
        #[cfg(feature = "debug_invariants")]
        assert_eq!(
            out.iter().map(Vec::len).sum::<usize>(),
            input_len,
            "debug_invariants: round-robin split lost or duplicated items",
        );
        out
    }

    /// Reassembles round-robin partitions back into the original order —
    /// the inverse of [`RoundRobinPartitioner::split`].
    ///
    /// # Examples
    ///
    /// ```
    /// use diststream_engine::RoundRobinPartitioner;
    /// let parts = RoundRobinPartitioner.split(vec![1, 2, 3, 4, 5], 3);
    /// assert_eq!(RoundRobinPartitioner.interleave(parts), vec![1, 2, 3, 4, 5]);
    /// ```
    pub fn interleave<T>(&self, partitions: Vec<Vec<T>>) -> Vec<T> {
        let total: usize = partitions.iter().map(Vec::len).sum();
        let mut iters: Vec<std::vec::IntoIter<T>> =
            partitions.into_iter().map(Vec::into_iter).collect();
        let mut out = Vec::with_capacity(total);
        'outer: loop {
            let mut advanced = false;
            for it in &mut iters {
                if let Some(item) = it.next() {
                    out.push(item);
                    advanced = true;
                }
            }
            if !advanced {
                break 'outer;
            }
        }
        out
    }
}

/// Splits records into `p` contiguous blocks in arrival order — the
/// range-sharded alternative to [`RoundRobinPartitioner`] for step-1 record
/// parallelism. Each block preserves arrival order and the original order is
/// recovered by plain concatenation, so block partitioning satisfies the
/// same order-restoration contract as round-robin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockPartitioner;

impl BlockPartitioner {
    /// Splits `items` into `partitions` contiguous blocks of near-equal
    /// size (the first `len % partitions` blocks get one extra item).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use diststream_engine::BlockPartitioner;
    /// let parts = BlockPartitioner.split(vec![1, 2, 3, 4, 5], 2);
    /// assert_eq!(parts, vec![vec![1, 2, 3], vec![4, 5]]);
    /// ```
    pub fn split<T>(&self, items: Vec<T>, partitions: usize) -> Vec<Vec<T>> {
        assert!(partitions > 0, "partition count must be at least 1");
        let len = items.len();
        let base = len / partitions;
        let extra = len % partitions;
        let mut out: Vec<Vec<T>> = Vec::with_capacity(partitions);
        let mut iter = items.into_iter();
        for i in 0..partitions {
            let take = base + usize::from(i < extra);
            out.push(iter.by_ref().take(take).collect());
        }
        #[cfg(feature = "debug_invariants")]
        assert_eq!(
            out.iter().map(Vec::len).sum::<usize>(),
            len,
            "debug_invariants: block split lost or duplicated items",
        );
        out
    }

    /// Reassembles contiguous blocks back into the original order — the
    /// inverse of [`BlockPartitioner::split`] is concatenation.
    pub fn concat<T>(&self, partitions: Vec<Vec<T>>) -> Vec<T> {
        let total: usize = partitions.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for part in partitions {
            out.extend(part);
        }
        out
    }
}

/// Hash-partitions keyed items deterministically across `p` partitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashPartitioner;

impl HashPartitioner {
    /// The partition index for `key` out of `partitions`.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn partition_of<K: KeyBytes>(&self, key: &K, partitions: usize) -> usize {
        assert!(partitions > 0, "partition count must be at least 1");
        (fnv1a_hash(&key.key_bytes()) % partitions as u64) as usize
    }
}

/// Keys that can expose stable bytes for deterministic hashing.
///
/// Implemented for the integer key types the framework shuffles on. (The
/// blanket `Hash` trait is unusable here because `std`'s hasher seeds are
/// randomized per-process.)
pub trait KeyBytes {
    /// A stable byte representation of the key.
    fn key_bytes(&self) -> Vec<u8>;
}

impl KeyBytes for u64 {
    fn key_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl KeyBytes for u32 {
    fn key_bytes(&self) -> Vec<u8> {
        self.to_le_bytes().to_vec()
    }
}

impl KeyBytes for usize {
    fn key_bytes(&self) -> Vec<u8> {
        (*self as u64).to_le_bytes().to_vec()
    }
}

impl KeyBytes for (u64, u64) {
    fn key_bytes(&self) -> Vec<u8> {
        let mut v = self.0.to_le_bytes().to_vec();
        v.extend_from_slice(&self.1.to_le_bytes());
        v
    }
}

/// Groups `(key, value)` pairs by key and assigns each group to one of
/// `partitions` shuffle partitions — the `groupByKey` step of model-based
/// parallelism (§V-B).
///
/// Within a partition, groups appear in first-occurrence order of their key
/// and values keep their input order, so the result is fully deterministic.
///
/// Accepts any `(key, value)` iterator, so callers can feed a drained scratch
/// buffer (`buf.drain(..)`) and keep its capacity across batches instead of
/// rebuilding a `Vec` every time.
///
/// # Panics
///
/// Panics if `partitions` is zero.
///
/// # Examples
///
/// ```
/// use diststream_engine::group_by_key;
///
/// let pairs = vec![(1u64, "a"), (2, "b"), (1, "c")];
/// let parts = group_by_key(pairs, 1);
/// assert_eq!(parts[0], vec![(1, vec!["a", "c"]), (2, vec!["b"])]);
/// ```
pub fn group_by_key<K, V>(
    pairs: impl IntoIterator<Item = (K, V)>,
    partitions: usize,
) -> Vec<Vec<(K, Vec<V>)>>
where
    K: Eq + Hash + Clone + KeyBytes,
{
    group_by_key_with(pairs, partitions, |key| {
        HashPartitioner.partition_of(key, partitions)
    })
}

/// [`group_by_key`] with an explicit shuffle-routing function: `route(key)`
/// names the reduce partition that owns `key`. This is the hook a
/// `DistributionStrategy` uses to replace the default hash placement with
/// key-range or locality-affine placement; everything else (first-occurrence
/// group order, arrival-order values) is identical, which is why routing can
/// never perturb the order-aware model.
///
/// # Panics
///
/// Panics if `partitions` is zero or `route` returns an out-of-range index.
pub fn group_by_key_with<K, V, F>(
    pairs: impl IntoIterator<Item = (K, V)>,
    partitions: usize,
    route: F,
) -> Vec<Vec<(K, Vec<V>)>>
where
    K: Eq + Hash + Clone + KeyBytes,
    F: Fn(&K) -> usize,
{
    assert!(partitions > 0, "partition count must be at least 1");
    #[cfg(feature = "debug_invariants")]
    let mut input_len = 0usize;
    // key -> (partition, position within partition)
    let mut slots: HashMap<K, (usize, usize)> = HashMap::new();
    let mut out: Vec<Vec<(K, Vec<V>)>> = (0..partitions).map(|_| Vec::new()).collect();
    for (key, value) in pairs {
        #[cfg(feature = "debug_invariants")]
        {
            input_len += 1;
        }
        match slots.get(&key) {
            Some(&(p, idx)) => out[p][idx].1.push(value),
            None => {
                let p = route(&key);
                assert!(p < partitions, "shuffle route out of range: {p}");
                let idx = out[p].len();
                out[p].push((key.clone(), vec![value]));
                slots.insert(key, (p, idx));
            }
        }
    }
    #[cfg(feature = "debug_invariants")]
    {
        // Completeness: every input value lands in exactly one group, and
        // no key appears in two partitions (slots guarantees both; this
        // catches regressions if the bookkeeping is ever rewritten).
        let value_count: usize = out
            .iter()
            .flat_map(|part| part.iter().map(|(_, vs)| vs.len()))
            .sum();
        assert_eq!(
            value_count, input_len,
            "debug_invariants: group_by_key lost or duplicated values",
        );
        let mut seen_keys = std::collections::BTreeSet::new();
        for (key, _) in out.iter().flatten() {
            assert!(
                seen_keys.insert(fnv1a_hash(&key.key_bytes())),
                "debug_invariants: group_by_key emitted a key twice",
            );
        }
    }
    out
}

/// A map-side combiner: merges shuffle values for the same key task-locally
/// before they cross the hash shuffle (Spark's `combineByKey` role).
///
/// `lift` turns a single shuffle value into a partial aggregate; `merge`
/// folds one partial into another. [`combine_by_key`] merges partials for
/// the same key in a fixed order — ascending map-partition index, with each
/// map partition contributing at most one partial per key — so the result
/// is deterministic regardless of which worker produced which partial.
pub trait Combiner<V> {
    /// The per-key partial aggregate that crosses the shuffle.
    type Partial;
    /// Wraps one value into a fresh partial.
    fn lift(&self, value: V) -> Self::Partial;
    /// Folds `other` into `acc`. Called in ascending map-partition order.
    fn merge(&self, acc: &mut Self::Partial, other: Self::Partial);
}

/// The identity combiner: partials are plain value vectors and merging is
/// concatenation. Combining with this is *exactly* `groupByKey` — when the
/// map partitions are contiguous slices of the input, the combined output
/// is byte-identical to [`group_by_key`] over the flattened input (verified
/// by property test), which is what lets the shuffle combine ride the
/// order-aware path without perturbing the model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendCombiner;

impl<V> Combiner<V> for AppendCombiner {
    type Partial = Vec<V>;
    fn lift(&self, value: V) -> Vec<V> {
        vec![value]
    }
    fn merge(&self, acc: &mut Vec<V>, mut other: Vec<V>) {
        acc.append(&mut other);
    }
}

/// What the map-side combine saved: entry counts before and after the
/// task-local merge, for the network-cost model's post-combine accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CombineStats {
    /// Total `(key, value)` pairs fed in — the uncombined shuffle message
    /// count.
    pub input_pairs: usize,
    /// Distinct `(map partition, key)` entries — the combined shuffle
    /// message count (each entry crosses the wire once).
    pub combined_entries: usize,
}

/// Grouped shuffle partitions plus the [`CombineStats`] of the map-side
/// combine that produced them.
pub type CombinedShuffle<K, P> = (Vec<Vec<(K, P)>>, CombineStats);

/// `group_by_key` with a map-side combine stage (§V-B with Spark's
/// map-side-combine optimization).
///
/// Each map partition is first combined task-locally: values for the same
/// key within a partition collapse into one partial via [`Combiner::lift`]
/// and [`Combiner::merge`], in first-occurrence order. The partials then
/// cross the shuffle and merge into the final grouped output in ascending
/// map-partition index — a fixed merge order, so the result is independent
/// of task scheduling. Group placement follows the same first-occurrence
/// rule as [`group_by_key`]: with the [`AppendCombiner`] and map partitions
/// that are contiguous slices of an input list, the output equals
/// `group_by_key(flattened input)` exactly.
///
/// Returns the grouped shuffle partitions plus [`CombineStats`] for
/// post-combine byte accounting.
///
/// # Panics
///
/// Panics if `partitions` is zero.
///
/// # Examples
///
/// ```
/// use diststream_engine::{combine_by_key, group_by_key, AppendCombiner};
///
/// let chunks = vec![vec![(1u64, "a"), (2, "b")], vec![(1, "c")]];
/// let (parts, stats) = combine_by_key(chunks.clone(), 1, &AppendCombiner);
/// assert_eq!(parts, group_by_key(chunks.into_iter().flatten(), 1));
/// assert_eq!(stats.input_pairs, 3);
/// assert_eq!(stats.combined_entries, 3); // no intra-chunk duplicates here
/// ```
pub fn combine_by_key<K, V, C>(
    map_partitions: Vec<Vec<(K, V)>>,
    partitions: usize,
    combiner: &C,
) -> CombinedShuffle<K, C::Partial>
where
    K: Eq + Hash + Clone + KeyBytes,
    C: Combiner<V>,
{
    combine_by_key_with(map_partitions, partitions, combiner, |key| {
        HashPartitioner.partition_of(key, partitions)
    })
}

/// [`combine_by_key`] with an explicit shuffle-routing function, the
/// combined counterpart of [`group_by_key_with`]: `route(key)` names the
/// reduce partition each combined partial is shipped to. The map-side merge
/// order (ascending chunk index) is unchanged, so for any routing function
/// the grouped values equal the uncombined shuffle under the same routing.
///
/// # Panics
///
/// Panics if `partitions` is zero or `route` returns an out-of-range index.
pub fn combine_by_key_with<K, V, C, F>(
    map_partitions: Vec<Vec<(K, V)>>,
    partitions: usize,
    combiner: &C,
    route: F,
) -> CombinedShuffle<K, C::Partial>
where
    K: Eq + Hash + Clone + KeyBytes,
    C: Combiner<V>,
    F: Fn(&K) -> usize,
{
    assert!(partitions > 0, "partition count must be at least 1");
    let mut stats = CombineStats::default();
    // key -> (partition, position) in the final grouped output.
    let mut slots: HashMap<K, (usize, usize)> = HashMap::new();
    let mut out: Vec<Vec<(K, C::Partial)>> = (0..partitions).map(|_| Vec::new()).collect();
    // Scratch for one map partition's local combine; keyed by position so
    // the chunk's first-occurrence order is preserved into the merge.
    let mut local_slots: HashMap<K, usize> = HashMap::new();
    for chunk in map_partitions {
        // Map side: combine within the chunk, first-occurrence order.
        local_slots.clear();
        let mut local: Vec<(K, C::Partial)> = Vec::new();
        for (key, value) in chunk {
            stats.input_pairs += 1;
            match local_slots.get(&key) {
                Some(&idx) => {
                    let lifted = combiner.lift(value);
                    combiner.merge(&mut local[idx].1, lifted);
                }
                None => {
                    local_slots.insert(key.clone(), local.len());
                    local.push((key, combiner.lift(value)));
                }
            }
        }
        stats.combined_entries += local.len();
        // Reduce side: each chunk contributes at most one partial per key,
        // and chunks are consumed in ascending index — the fixed merge
        // order that makes the grouped result schedule-independent.
        for (key, partial) in local {
            match slots.get(&key) {
                Some(&(p, idx)) => combiner.merge(&mut out[p][idx].1, partial),
                None => {
                    let p = route(&key);
                    assert!(p < partitions, "shuffle route out of range: {p}");
                    let idx = out[p].len();
                    out[p].push((key.clone(), partial));
                    slots.insert(key, (p, idx));
                }
            }
        }
    }
    #[cfg(feature = "debug_invariants")]
    {
        let mut seen_keys = std::collections::BTreeSet::new();
        for (key, _) in out.iter().flatten() {
            assert!(
                seen_keys.insert(fnv1a_hash(&key.key_bytes())),
                "debug_invariants: combine_by_key emitted a key twice",
            );
        }
        assert!(
            stats.combined_entries <= stats.input_pairs,
            "debug_invariants: combine cannot create entries",
        );
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_preserves_relative_order() {
        let parts = RoundRobinPartitioner.split((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn round_robin_more_partitions_than_items() {
        let parts = RoundRobinPartitioner.split(vec![1, 2], 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], vec![1]);
        assert_eq!(parts[1], vec![2]);
        assert!(parts[2].is_empty() && parts[3].is_empty());
    }

    #[test]
    #[should_panic(expected = "partition count")]
    fn round_robin_zero_partitions_panics() {
        let _ = RoundRobinPartitioner.split(vec![1], 0);
    }

    #[test]
    fn interleave_inverts_split() {
        let items: Vec<u32> = (0..17).collect();
        for p in 1..6 {
            let parts = RoundRobinPartitioner.split(items.clone(), p);
            assert_eq!(RoundRobinPartitioner.interleave(parts), items);
        }
    }

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        for key in 0u64..100 {
            let p = HashPartitioner.partition_of(&key, 7);
            assert!(p < 7);
            assert_eq!(p, HashPartitioner.partition_of(&key, 7));
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let mut counts = vec![0usize; 4];
        for key in 0u64..1000 {
            counts[HashPartitioner.partition_of(&key, 4)] += 1;
        }
        for &c in &counts {
            assert!(c > 150, "partition unexpectedly starved: {counts:?}");
        }
    }

    #[test]
    fn group_by_key_groups_values_in_order() {
        let pairs = vec![(5u64, 1), (3, 2), (5, 3), (3, 4), (9, 5)];
        let parts = group_by_key(pairs, 2);
        let all: Vec<(u64, Vec<i32>)> = parts.into_iter().flatten().collect();
        let five = all.iter().find(|(k, _)| *k == 5).unwrap();
        assert_eq!(five.1, vec![1, 3]);
        let three = all.iter().find(|(k, _)| *k == 3).unwrap();
        assert_eq!(three.1, vec![2, 4]);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn group_by_key_single_partition_keeps_first_seen_order() {
        let pairs = vec![(2u64, "x"), (1, "y"), (2, "z")];
        let parts = group_by_key(pairs, 1);
        let keys: Vec<u64> = parts[0].iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 1]);
    }

    #[test]
    fn combine_by_key_collapses_intra_chunk_duplicates() {
        let chunks = vec![
            vec![(7u64, 1), (7, 2), (3, 3)],
            vec![(3, 4), (7, 5), (7, 6)],
        ];
        let (parts, stats) = combine_by_key(chunks, 2, &AppendCombiner);
        assert_eq!(stats.input_pairs, 6);
        // chunk 0: {7: [1,2], 3: [3]} = 2 entries; chunk 1: {3: [4], 7: [5,6]} = 2.
        assert_eq!(stats.combined_entries, 4);
        let all: Vec<(u64, Vec<i32>)> = parts.into_iter().flatten().collect();
        let seven = all.iter().find(|(k, _)| *k == 7).unwrap();
        assert_eq!(seven.1, vec![1, 2, 5, 6]);
        let three = all.iter().find(|(k, _)| *k == 3).unwrap();
        assert_eq!(three.1, vec![3, 4]);
    }

    /// A lossy combiner (sum) must still merge partials in fixed
    /// chunk-index order: sums are order-independent, but the first-seen
    /// group placement must match the flattened first occurrence.
    #[test]
    fn combine_by_key_supports_reducing_combiners() {
        struct Sum;
        impl Combiner<i64> for Sum {
            type Partial = i64;
            fn lift(&self, v: i64) -> i64 {
                v
            }
            fn merge(&self, acc: &mut i64, other: i64) {
                *acc += other;
            }
        }
        let chunks = vec![vec![(2u64, 10), (1, 1)], vec![(1, 2), (2, 30)]];
        let (parts, stats) = combine_by_key(chunks, 1, &Sum);
        assert_eq!(parts[0], vec![(2, 40), (1, 3)]);
        assert_eq!(stats.combined_entries, 4);
    }

    #[test]
    fn block_split_is_contiguous_and_concat_inverts() {
        let items: Vec<u32> = (0..17).collect();
        for p in 1..6 {
            let parts = BlockPartitioner.split(items.clone(), p);
            assert_eq!(parts.len(), p);
            assert_eq!(BlockPartitioner.concat(parts), items);
        }
    }

    #[test]
    fn block_split_balances_within_one() {
        let parts = BlockPartitioner.split((0..10).collect::<Vec<_>>(), 3);
        let lens: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "partition count")]
    fn block_split_zero_partitions_panics() {
        let _ = BlockPartitioner.split(vec![1], 0);
    }

    #[test]
    fn group_by_key_with_honors_custom_route() {
        let pairs = vec![(5u64, 1), (3, 2), (5, 3)];
        // Route everything to partition 1 of 2.
        let parts = group_by_key_with(pairs, 2, |_| 1);
        assert!(parts[0].is_empty());
        assert_eq!(parts[1], vec![(5, vec![1, 3]), (3, vec![2])]);
    }

    #[test]
    #[should_panic(expected = "shuffle route out of range")]
    fn group_by_key_with_rejects_out_of_range_route() {
        let _ = group_by_key_with(vec![(1u64, 1)], 2, |_| 2);
    }

    #[test]
    fn combine_by_key_with_matches_group_by_key_with_under_same_route() {
        let pairs = vec![(7u64, 1), (3, 2), (7, 3), (3, 4), (9, 5)];
        let route = |k: &u64| (*k % 3) as usize;
        let chunks: Vec<Vec<(u64, i32)>> = pairs.chunks(2).map(<[_]>::to_vec).collect();
        let (combined, _) = combine_by_key_with(chunks, 3, &AppendCombiner, route);
        let grouped = group_by_key_with(pairs, 3, route);
        assert_eq!(combined, grouped);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a_hash(b""), 0xcbf2_9ce4_8422_2325);
    }

    proptest! {
        #[test]
        fn prop_split_conserves_items(items in prop::collection::vec(0u32..1000, 0..200), p in 1usize..8) {
            let parts = RoundRobinPartitioner.split(items.clone(), p);
            let mut collected: Vec<u32> = parts.iter().flatten().copied().collect();
            let mut expected = items.clone();
            collected.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(collected, expected);
        }

        #[test]
        fn prop_group_by_key_conserves_values(
            pairs in prop::collection::vec((0u64..20, 0i32..1000), 0..200),
            p in 1usize..6,
        ) {
            let parts = group_by_key(pairs.clone(), p);
            let mut collected: Vec<i32> = parts.iter().flatten().flat_map(|(_, vs)| vs.iter().copied()).collect();
            let mut expected: Vec<i32> = pairs.iter().map(|&(_, v)| v).collect();
            collected.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(collected, expected);
        }

        /// The satellite property: map-side combine with the append
        /// combiner and a fixed merge order produces *byte-identical*
        /// grouped values to the uncombined shuffle, for arbitrary
        /// key/value multisets and any contiguous chunking.
        #[test]
        fn prop_combine_equals_uncombined_shuffle(
            pairs in prop::collection::vec((0u64..12, 0i32..1000), 0..200),
            p in 1usize..6,
            chunk_size in 1usize..40,
        ) {
            let chunks: Vec<Vec<(u64, i32)>> =
                pairs.chunks(chunk_size).map(<[_]>::to_vec).collect();
            let (combined, stats) = combine_by_key(chunks, p, &AppendCombiner);
            let uncombined = group_by_key(pairs.clone(), p);
            prop_assert_eq!(combined, uncombined);
            prop_assert_eq!(stats.input_pairs, pairs.len());
            prop_assert!(stats.combined_entries <= stats.input_pairs);
        }

        /// Chunk boundaries change how much the combine saves, never what
        /// it produces.
        #[test]
        fn prop_combine_is_chunking_invariant(
            pairs in prop::collection::vec((0u64..8, 0i32..100), 0..120),
            p in 1usize..5,
            a in 1usize..30,
            b in 1usize..30,
        ) {
            let chunk = |size: usize| -> Vec<Vec<(u64, i32)>> {
                pairs.chunks(size).map(<[_]>::to_vec).collect()
            };
            let (ga, _) = combine_by_key(chunk(a), p, &AppendCombiner);
            let (gb, _) = combine_by_key(chunk(b), p, &AppendCombiner);
            prop_assert_eq!(ga, gb);
        }

        #[test]
        fn prop_group_by_key_each_key_once(
            pairs in prop::collection::vec((0u64..20, 0i32..1000), 0..200),
            p in 1usize..6,
        ) {
            let parts = group_by_key(pairs, p);
            let mut seen = std::collections::HashSet::new();
            for (k, _) in parts.iter().flatten() {
                prop_assert!(seen.insert(*k), "key {} appeared in two groups", k);
            }
        }
    }
}

//! Ingest/reorder prefetch — the double-buffered batch stage.
//!
//! Synchronously, the driver drains the source (and any [`ReorderBuffer`]
//! wrapped around it) for batch *N+1* only after batch *N*'s global update
//! finishes, so source decode and order-recovery cost sits on the batch
//! critical path. [`prefetch_batches`] moves that drain onto a dedicated
//! worker: while the driver processes batch *N*, the worker stages batch
//! *N+1* into a bounded channel ([`PREFETCH_DEPTH`] slots — a double
//! buffer), and the driver's next pull is a channel receive instead of a
//! source drain.
//!
//! **Determinism.** The worker runs the same [`MiniBatcher`] the
//! synchronous path would, over the same source, producing the identical
//! batch sequence; only *when* batches are materialized changes. Batches
//! are consumed strictly in order through a FIFO channel, so everything
//! downstream (task layout, fault coordinates, checkpoint cursors) is
//! untouched.
//!
//! **Fault transparency.** A panic while draining the source (including
//! one injected into the batcher) is caught on the worker, shipped through
//! the channel, and re-raised on the consumer thread at the same pull that
//! would have panicked synchronously — so a faulted prefetched batch is
//! observably identical to a faulted synchronous one. Task-level
//! [`FaultPlan`](crate::FaultPlan) panics are unaffected either way: they
//! fire inside `run_tasks`, which prefetching does not touch.
//!
//! [`ReorderBuffer`]: crate::ReorderBuffer

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;

use diststream_telemetry as telemetry;

use crate::batcher::{MiniBatch, MiniBatcher};
use crate::source::RecordSource;

/// Staged-batch channel capacity: one batch in flight while one is being
/// consumed — the classic double buffer. Deeper prefetch would only grow
/// memory residency; the worker can never be more than one batch ahead of
/// the critical path anyway.
pub const PREFETCH_DEPTH: usize = 1;

/// What the prefetch worker ships to the consumer.
enum Staged {
    /// The next mini-batch, drained and reordered off the critical path.
    Batch(MiniBatch),
    /// The worker's drain panicked; the payload is re-raised at the
    /// consumer's matching pull.
    Poisoned(Box<dyn std::any::Any + Send>),
}

/// The consumer's handle: an ordered iterator over prefetched batches.
///
/// Yields exactly the batches the synchronous [`MiniBatcher`] would yield,
/// in the same order. If the worker's source drain panicked, the panic
/// resumes here — on the pull that would have panicked synchronously.
pub struct PrefetchedBatches {
    rx: mpsc::Receiver<Staged>,
}

impl Iterator for PrefetchedBatches {
    type Item = MiniBatch;

    fn next(&mut self) -> Option<MiniBatch> {
        match self.rx.recv() {
            Ok(Staged::Batch(batch)) => Some(batch),
            // Same observable behavior as the synchronous drain panicking.
            Ok(Staged::Poisoned(payload)) => panic::resume_unwind(payload),
            // Worker exhausted the source and hung up.
            Err(mpsc::RecvError) => None,
        }
    }
}

/// Runs `consume` over the mini-batches of `source`, drained by a
/// dedicated prefetch worker that stays one batch ahead of the consumer.
///
/// Equivalent to `consume` iterating `MiniBatcher::new(source, batch_secs)`
/// directly — same batches, same order, same panics — but with the source
/// drain overlapped against whatever `consume` does between pulls. The
/// worker is joined before this function returns, so no work outlives the
/// call.
///
/// Each staged drain is recorded as a `prefetch` telemetry span on the
/// worker thread (never nested inside a `batch` span — the batch spans
/// live on the driver thread; `xtask check-trace` enforces this).
///
/// # Panics
///
/// Re-raises any panic from draining the source, at the consumer's
/// matching pull (see [`PrefetchedBatches::next`]).
///
/// # Examples
///
/// ```
/// use diststream_engine::{prefetch_batches, VecSource};
/// use diststream_types::{Point, Record, Timestamp};
///
/// let records: Vec<Record> = (0..10)
///     .map(|i| Record::new(i, Point::zeros(1), Timestamp::from_secs(i as f64 * 0.1)))
///     .collect();
/// let batches = prefetch_batches(VecSource::new(records), 0.5, |batches| {
///     batches.collect::<Vec<_>>()
/// });
/// assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), 10);
/// ```
pub fn prefetch_batches<S, T, F>(source: S, batch_secs: f64, consume: F) -> T
where
    S: RecordSource + Send,
    F: FnOnce(PrefetchedBatches) -> T,
{
    // Construct the batcher on the caller thread so argument validation
    // panics synchronously, exactly like the non-prefetched path.
    let mut batcher = MiniBatcher::new(source, batch_secs);
    let (tx, rx) = mpsc::sync_channel::<Staged>(PREFETCH_DEPTH);
    let scope_result = crossbeam::thread::scope(move |s| {
        s.spawn(move |_| {
            loop {
                // Catch the drain's panic here and forward it so the
                // consumer observes it at the same pull as the sync path;
                // a raw worker panic would instead surface as a scope
                // error with the payload's pull position lost.
                let staged = panic::catch_unwind(AssertUnwindSafe(|| {
                    let _span = telemetry::span!(telemetry::names::SPAN_PREFETCH);
                    batcher.next()
                }));
                match staged {
                    // A send error means the consumer hung up early (it
                    // stopped on an error); just stop staging.
                    Ok(Some(batch)) => {
                        if tx.send(Staged::Batch(batch)).is_err() {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(payload) => {
                        let _ = tx.send(Staged::Poisoned(payload));
                        break;
                    }
                }
            }
        });
        consume(PrefetchedBatches { rx })
    });
    match scope_result {
        Ok(out) => out,
        // Unreachable by construction — the worker catches its own panics —
        // but re-raise rather than assert so an impossible state cannot
        // mask the original panic.
        Err(payload) => panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use diststream_types::{Point, Record, Timestamp};

    fn records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(i, Point::zeros(1), Timestamp::from_secs(i as f64 * 0.25)))
            .collect()
    }

    #[test]
    fn prefetched_batches_equal_synchronous_batches() {
        let sync: Vec<MiniBatch> = MiniBatcher::new(VecSource::new(records(57)), 1.0).collect();
        let prefetched =
            prefetch_batches(VecSource::new(records(57)), 1.0, |b| b.collect::<Vec<_>>());
        assert_eq!(prefetched, sync);
        assert!(sync.len() > 1, "test needs multiple batches");
    }

    #[test]
    fn empty_source_yields_no_batches() {
        let batches = prefetch_batches(VecSource::new(Vec::new()), 1.0, |b| b.count());
        assert_eq!(batches, 0);
    }

    #[test]
    fn consumer_may_stop_early() {
        // Dropping the handle after one batch must not wedge the worker.
        let first = prefetch_batches(VecSource::new(records(100)), 1.0, |mut b| b.next());
        assert!(first.is_some());
    }

    /// A source that panics mid-stream, standing in for a poisoned ingest.
    struct PoisonedSource {
        yielded: u64,
        panic_at: u64,
    }

    impl RecordSource for PoisonedSource {
        fn next_record(&mut self) -> Option<Record> {
            if self.yielded == self.panic_at {
                // lint:allow(no-panic) scripted test fault
                panic!("poisoned ingest at record {}", self.yielded);
            }
            let i = self.yielded;
            self.yielded += 1;
            Some(Record::new(
                i,
                Point::zeros(1),
                Timestamp::from_secs(i as f64),
            ))
        }
    }

    #[test]
    fn ingest_panic_resumes_on_consumer_at_matching_pull() {
        // Panic at record 6 with 1s batches: batches 0..=5 hold one record
        // each; the pull for the next batch panics — same as synchronous.
        let sync_count = {
            let mut batcher = MiniBatcher::new(
                PoisonedSource {
                    yielded: 0,
                    panic_at: 6,
                },
                1.0,
            );
            let mut n = 0;
            while let Ok(Some(_)) = panic::catch_unwind(AssertUnwindSafe(|| batcher.next())) {
                n += 1;
            }
            n
        };
        let mut prefetched_count = 0;
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            prefetch_batches(
                PoisonedSource {
                    yielded: 0,
                    panic_at: 6,
                },
                1.0,
                |batches| {
                    for _ in batches {
                        prefetched_count += 1;
                    }
                },
            );
        }));
        let payload = caught.expect_err("ingest panic must propagate to the consumer");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("poisoned ingest"), "payload: {message:?}");
        assert_eq!(
            prefetched_count, sync_count,
            "panic must land at the same pull as the synchronous path"
        );
    }
}

//! Broadcast variables — shipping the micro-cluster model to every task.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use serde::Serialize;

use crate::sizeof::serialized_size;

/// A read-only value shared with every task of a step, like Spark's
/// broadcast variables.
///
/// At the start of each batch-by-batch feedback loop, DistStream broadcasts
/// "the entire micro-cluster set `Q_t` to each task" (§V-A). In-process the
/// share is an [`Arc`] clone; the *cost* of the broadcast — `p` copies of
/// the serialized value over the network — is captured once at construction
/// as [`Broadcast::payload_bytes`] and charged by the simulated network
/// model.
///
/// # Examples
///
/// ```
/// use diststream_engine::Broadcast;
///
/// let model = Broadcast::new(vec![1.0f64; 100]);
/// assert_eq!(model.payload_bytes(), 8 + 800);
/// assert_eq!(model.len(), 100); // Deref to the inner value
/// ```
pub struct Broadcast<T> {
    value: Arc<T>,
    payload_bytes: u64,
}

impl<T: Serialize> Broadcast<T> {
    /// Wraps `value` for sharing, recording its serialized size.
    pub fn new(value: T) -> Self {
        let payload_bytes = serialized_size(&value);
        Broadcast {
            value: Arc::new(value),
            payload_bytes,
        }
    }
}

impl<T> Broadcast<T> {
    /// Serialized size of the broadcast payload, in bytes (one copy).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// A shared handle for moving into a task closure.
    pub fn handle(&self) -> Arc<T> {
        Arc::clone(&self.value)
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: Arc::clone(&self.value),
            payload_bytes: self.payload_bytes,
        }
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for Broadcast<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broadcast")
            .field("payload_bytes", &self.payload_bytes)
            .field("value", &*self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_size_recorded() {
        let b = Broadcast::new(7u64);
        assert_eq!(b.payload_bytes(), 8);
    }

    #[test]
    fn clones_share_the_value() {
        let b = Broadcast::new(vec![1, 2, 3]);
        let c = b.clone();
        assert!(Arc::ptr_eq(&b.handle(), &c.handle()));
        assert_eq!(c.payload_bytes(), b.payload_bytes());
    }

    #[test]
    fn deref_reaches_inner() {
        let b = Broadcast::new(String::from("model"));
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn handle_moves_into_threads() {
        let b = Broadcast::new(vec![1u64, 2, 3]);
        let h = b.handle();
        let sum: u64 = std::thread::spawn(move || h.iter().sum()).join().unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn debug_is_nonempty() {
        let b = Broadcast::new(1u8);
        assert!(format!("{b:?}").contains("payload_bytes"));
    }
}

//! Model-checked concurrency tests for the engine's two shared-state
//! primitives: the [`TaskPool`] claim/output protocol and [`Broadcast`].
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p
//! diststream-engine --test loom`. The vendored loom is a deterministic
//! yield-injection stress harness, not an exhaustive interleaving
//! explorer; each `loom::model` closure is executed for many perturbed
//! schedules and every schedule must uphold the invariants below.
#![cfg(loom)]

use diststream_engine::{Broadcast, TaskPool};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// A loom-instrumented replica of `TaskPool::run`'s scheduling core: a
/// shared `fetch_add` cursor hands each task index to exactly one worker,
/// which takes the input from its slot and writes the output slot.
///
/// Invariants checked on every explored schedule:
/// - no two workers claim the same index (each input slot is taken once);
/// - every output slot is written exactly once with the right value;
/// - workers never observe an already-emptied input slot.
#[test]
fn claim_protocol_assigns_each_task_to_exactly_one_worker() {
    const TASKS: usize = 4;
    const WORKERS: usize = 3;

    loom::model(|| {
        let slots: Arc<Vec<Mutex<Option<usize>>>> =
            Arc::new((0..TASKS).map(|i| Mutex::new(Some(i))).collect());
        let results: Arc<Vec<Mutex<Option<usize>>>> =
            Arc::new((0..TASKS).map(|_| Mutex::new(None)).collect());
        let cursor = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let slots = Arc::clone(&slots);
                let results = Arc::clone(&results);
                let cursor = Arc::clone(&cursor);
                thread::spawn(move || loop {
                    let idx = cursor.fetch_add(1, Ordering::SeqCst);
                    if idx >= TASKS {
                        break;
                    }
                    // The claim above is exclusive, so the slot must still
                    // hold its input when this worker arrives.
                    let input = slots[idx]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("claimed slot was already emptied by another worker");
                    let mut out = results[idx].lock().unwrap();
                    assert!(out.is_none(), "output slot {idx} written twice");
                    *out = Some(input * 10);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        for (i, cell) in results.iter().enumerate() {
            assert_eq!(
                *cell.lock().unwrap(),
                Some(i * 10),
                "output slot {i} missing or wrong"
            );
        }
        // Cursor overshoot is bounded: each worker exits after one failed
        // claim, so at most TASKS + WORKERS increments ever happen.
        let final_cursor = cursor.load(Ordering::SeqCst);
        assert!(
            final_cursor <= TASKS + WORKERS,
            "cursor advanced past the worker-exit bound: {final_cursor}"
        );
    });
}

/// The real `TaskPool::run` under perturbed schedules: outputs must be
/// complete, in task order, and identical on every explored schedule.
#[test]
fn task_pool_outputs_complete_and_identical_across_schedules() {
    let expected: Vec<u64> = (0..16u64).map(|x| x * x + 1).collect();
    loom::model(|| {
        let pool = TaskPool::new(4);
        let inputs: Vec<u64> = (0..16).collect();
        let (outs, secs) = pool
            .run(inputs, &|idx, x: u64| {
                loom::thread::yield_now();
                assert_eq!(idx as u64, x, "task index and input desynchronized");
                x * x + 1
            })
            .expect("pool run failed");
        assert_eq!(outs, expected, "outputs incomplete or out of task order");
        assert_eq!(secs.len(), expected.len());
    });
}

/// A loom-instrumented replica of the `SnapshotSlot` publish/read protocol:
/// a version counter bumped under the same mutex that guards the
/// `(epoch, value)` pair, with readers that refresh only on version change
/// and re-read the version under the lock.
///
/// Invariants checked on every explored schedule:
/// - a reader never observes a pair whose content mismatches its epoch
///   (no torn version/value pairing);
/// - epochs observed by a single reader are nondecreasing;
/// - after the writer joins, a fresh read sees the final epoch.
#[test]
fn snapshot_slot_readers_never_observe_torn_pairs() {
    const EPOCHS: u64 = 3;

    loom::model(|| {
        let version = Arc::new(AtomicUsize::new(0));
        let slot: Arc<Mutex<Option<(u64, u64)>>> = Arc::new(Mutex::new(None));

        let writer = {
            let version = Arc::clone(&version);
            let slot = Arc::clone(&slot);
            thread::spawn(move || {
                for epoch in 1..=EPOCHS {
                    let mut guard = slot.lock().unwrap();
                    *guard = Some((epoch, epoch * 10));
                    version.fetch_add(1, Ordering::SeqCst);
                }
            })
        };

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let version = Arc::clone(&version);
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    let mut seen = 0usize;
                    let mut cached: Option<(u64, u64)> = None;
                    for _ in 0..EPOCHS {
                        if version.load(Ordering::SeqCst) != seen {
                            let guard = slot.lock().unwrap();
                            seen = version.load(Ordering::SeqCst);
                            let fresh = *guard;
                            if let Some((epoch, value)) = fresh {
                                assert_eq!(value, epoch * 10, "torn epoch/value pair");
                                if let Some((prev, _)) = cached {
                                    assert!(epoch >= prev, "epoch went backwards");
                                }
                            }
                            cached = fresh;
                        }
                        thread::yield_now();
                    }
                })
            })
            .collect();

        writer.join().unwrap();
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(version.load(Ordering::SeqCst), EPOCHS as usize);
        assert_eq!(*slot.lock().unwrap(), Some((EPOCHS, EPOCHS * 10)));
    });
}

/// Broadcast publish/read: once constructed, every concurrent reader —
/// through clones and handles alike — observes the same payload and the
/// same recorded payload size.
#[test]
fn broadcast_readers_observe_one_consistent_payload() {
    loom::model(|| {
        let model: Vec<u64> = (0..32).collect();
        let b = Broadcast::new(model.clone());
        let expected_bytes = b.payload_bytes();

        let handles: Vec<_> = (0..3)
            .map(|_| {
                let b = b.clone();
                let model = model.clone();
                thread::spawn(move || {
                    assert_eq!(*b.handle(), model, "reader saw a torn broadcast value");
                    assert_eq!(
                        b.payload_bytes(),
                        expected_bytes,
                        "payload size drifted between clones"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // The original is untouched by concurrent reads.
        assert_eq!(*b, model);
    });
}

//! The telemetry clock — the single sanctioned monotonic-time read.
//!
//! All span and journal timestamps come from [`now_ns`]: nanoseconds since
//! a process-wide anchor taken on first use. Confining the `Instant::now`
//! call to this module keeps the `wallclock-entropy` lint meaningful: time
//! is observed here for *attribution only* and never feeds back into model
//! state, batching decisions, or anything else replay-sensitive.

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process-wide telemetry anchor.
///
/// The anchor is the first call to this function, so early timestamps are
/// small; only differences between readings are meaningful.
pub fn now_ns() -> u64 {
    let anchor = ANCHOR.get_or_init(Instant::now);
    // u64 nanoseconds cover ~584 years of process uptime.
    anchor.elapsed().as_nanos() as u64
}

/// Converts a [`now_ns`] reading (or duration) to microseconds, the unit
/// used in the JSONL journal.
pub fn ns_to_us(ns: u64) -> u64 {
    ns / 1_000
}

/// Converts a nanosecond duration to seconds.
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(ns_to_us(1_500), 1);
        assert!((ns_to_secs(2_000_000_000) - 2.0).abs() < 1e-12);
    }
}

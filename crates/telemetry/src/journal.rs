//! The event journal: typed events, JSONL encoding, and the barrier drain.
//!
//! Spans and point events accumulate in per-thread buffers (see `span.rs`).
//! When a thread's buffer flushes — explicitly at a barrier, or implicitly
//! when the thread exits — its events land in a process-wide pending queue.
//! [`barrier_drain`] moves the pending queue into the installed sink: a
//! JSONL file (`--trace-out`) or an in-memory capture used by tests.
//!
//! The journal is strictly observational: when no sink is installed the
//! drain discards events (counting them), and when telemetry is disabled
//! nothing is recorded at all.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Schema version stamped into the journal's leading `meta` line and
/// checked by `xtask check-trace`.
pub const JOURNAL_VERSION: u64 = 1;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was opened.
    Open,
    /// A span was closed; `dur_us` holds its duration.
    Close,
    /// A named instantaneous observation with numeric fields.
    Point,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Open => "open",
            EventKind::Close => "close",
            EventKind::Point => "point",
        }
    }
}

/// One journal event. Span events carry nesting metadata; point events
/// carry a flat list of numeric fields (merged into the JSON object, so
/// field names must avoid the reserved keys `ev`, `span`, `name`,
/// `thread`, `seq`, `depth`, `t_us`, `dur_us`, `batch`, `task`).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Span or point name (static so hot paths never allocate for it).
    pub name: &'static str,
    /// Per-thread ordinal assigned at the thread's first event.
    pub thread: u64,
    /// Per-thread monotonically increasing sequence number.
    pub seq: u64,
    /// Span nesting depth at open time (0 = top level). 0 for points.
    pub depth: u16,
    /// Event timestamp, microseconds since the telemetry clock anchor.
    pub t_us: u64,
    /// Span duration in microseconds (close events only).
    pub dur_us: u64,
    /// Mini-batch index, when the emitter is batch-scoped.
    pub batch: Option<u64>,
    /// Task index, when the emitter is task-scoped.
    pub task: Option<u64>,
    /// Extra numeric payload (point events).
    pub fields: Vec<(&'static str, f64)>,
}

/// Serializes a finite `f64` the way JSON requires; non-finite values
/// (which JSON cannot represent) become `null`.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        // `{:?}` prints the shortest round-trippable form.
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

impl Event {
    /// Encodes the event as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ev\":\"");
        out.push_str(self.kind.as_str());
        out.push('"');
        let name_key = match self.kind {
            EventKind::Point => "name",
            _ => "span",
        };
        out.push_str(&format!(",\"{name_key}\":\"{}\"", escape(self.name)));
        out.push_str(&format!(
            ",\"thread\":{},\"seq\":{},\"t_us\":{}",
            self.thread, self.seq, self.t_us
        ));
        if self.kind != EventKind::Point {
            out.push_str(&format!(",\"depth\":{}", self.depth));
        }
        if self.kind == EventKind::Close {
            out.push_str(&format!(",\"dur_us\":{}", self.dur_us));
        }
        if let Some(batch) = self.batch {
            out.push_str(&format!(",\"batch\":{batch}"));
        }
        if let Some(task) = self.task {
            out.push_str(&format!(",\"task\":{task}"));
        }
        for (key, value) in &self.fields {
            out.push_str(&format!(",\"{}\":{}", escape(key), json_f64(*value)));
        }
        out.push('}');
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

enum Sink {
    Memory(Vec<Event>),
    File(BufWriter<File>),
}

#[derive(Default)]
struct JournalState {
    sink: Option<Sink>,
    /// Events drained while no sink was installed.
    discarded: u64,
    /// Write errors swallowed (telemetry must never fail the run).
    write_errors: u64,
}

static PENDING: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static JOURNAL: Mutex<Option<JournalState>> = Mutex::new(None);

fn with_journal<R>(f: impl FnOnce(&mut JournalState) -> R) -> R {
    let mut guard = match JOURNAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(guard.get_or_insert_with(JournalState::default))
}

/// Appends a thread buffer's events to the process-wide pending queue.
/// Called by `span.rs` when a thread flushes or exits.
pub(crate) fn push_pending(events: &mut Vec<Event>) {
    if events.is_empty() {
        return;
    }
    let mut pending = match PENDING.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    pending.append(events);
}

fn write_line(sink: &mut Sink, line: &str) -> std::io::Result<()> {
    match sink {
        Sink::Memory(_) => Ok(()),
        Sink::File(w) => {
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")
        }
    }
}

/// Installs a JSONL file sink at `path`, truncating any existing file, and
/// writes the leading `meta` line.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be created or written.
pub fn set_journal_file(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(
        format!("{{\"ev\":\"meta\",\"version\":{JOURNAL_VERSION},\"clock\":\"monotonic-us\"}}\n")
            .as_bytes(),
    )?;
    with_journal(|j| {
        j.sink = Some(Sink::File(writer));
        j.discarded = 0;
        j.write_errors = 0;
    });
    Ok(())
}

/// Installs an in-memory capture sink (tests). Captured events are
/// retrieved with [`take_events`].
pub fn set_journal_capture() {
    with_journal(|j| {
        j.sink = Some(Sink::Memory(Vec::new()));
        j.discarded = 0;
        j.write_errors = 0;
    });
}

/// Renders the trailing journal line recording `count` dropped events.
fn drops_line(count: u64) -> String {
    format!("{{\"ev\":\"drops\",\"count\":{count}}}")
}

/// Removes the sink, flushing a file sink. Returns captured events when the
/// sink was an in-memory capture.
///
/// A file journal that lost events (swallowed write errors — telemetry
/// never fails the run) gets a trailing `{"ev":"drops","count":N}` line so
/// downstream consumers (`xtask check-trace`, trace analytics) can tell a
/// truncated journal from a complete one.
pub fn close_journal() -> Vec<Event> {
    with_journal(|j| {
        let drops = j.discarded + j.write_errors;
        match j.sink.take() {
            Some(Sink::Memory(events)) => events,
            Some(Sink::File(mut w)) => {
                if drops > 0 {
                    let _ = w.write_all(drops_line(drops).as_bytes());
                    let _ = w.write_all(b"\n");
                }
                let _ = w.flush();
                Vec::new()
            }
            None => Vec::new(),
        }
    })
}

/// Test hook: pretends `count` journal writes failed, so the drops trailer
/// path can be exercised without an actual I/O failure.
#[cfg(test)]
pub(crate) fn force_write_errors(count: u64) {
    with_journal(|j| j.write_errors += count);
}

/// Takes every event captured so far by an in-memory sink without closing
/// it. Returns an empty vector for file sinks or when no sink is installed.
pub fn take_events() -> Vec<Event> {
    with_journal(|j| match &mut j.sink {
        Some(Sink::Memory(events)) => std::mem::take(events),
        _ => Vec::new(),
    })
}

/// Number of events drained while no sink was installed, plus write errors
/// swallowed. Non-zero values indicate a misconfigured session, never a
/// correctness problem.
pub fn dropped_events() -> u64 {
    with_journal(|j| j.discarded + j.write_errors)
}

/// The barrier drain: flushes the calling thread's buffer, then moves the
/// whole pending queue into the installed sink.
///
/// The engine calls this on the driver thread at every mini-batch barrier —
/// after the global update, when all worker threads of the batch have
/// exited and their buffers have auto-flushed — so the journal is complete
/// and batch-ordered without any cross-thread coordination on the hot path.
pub fn barrier_drain() {
    crate::span::flush_thread();
    let drained: Vec<Event> = {
        let mut pending = match PENDING.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        std::mem::take(&mut *pending)
    };
    if drained.is_empty() {
        return;
    }
    with_journal(|j| match &mut j.sink {
        Some(Sink::Memory(events)) => events.extend(drained),
        Some(sink @ Sink::File(_)) => {
            for event in &drained {
                if write_line(sink, &event.to_json()).is_err() {
                    j.write_errors += 1;
                }
            }
        }
        None => j.discarded += drained.len() as u64,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: EventKind) -> Event {
        Event {
            kind,
            name: "demo",
            thread: 1,
            seq: 2,
            depth: 3,
            t_us: 4,
            dur_us: 5,
            batch: Some(6),
            task: None,
            fields: Vec::new(),
        }
    }

    #[test]
    fn open_event_json_shape() {
        let json = event(EventKind::Open).to_json();
        assert_eq!(
            json,
            "{\"ev\":\"open\",\"span\":\"demo\",\"thread\":1,\"seq\":2,\"t_us\":4,\"depth\":3,\"batch\":6}"
        );
    }

    #[test]
    fn close_event_includes_duration() {
        let json = event(EventKind::Close).to_json();
        assert!(json.contains("\"dur_us\":5"));
    }

    #[test]
    fn point_event_merges_fields() {
        let mut e = event(EventKind::Point);
        e.fields = vec![("records", 10.0), ("frac", 0.25)];
        let json = e.to_json();
        assert!(json.contains("\"name\":\"demo\""));
        assert!(json.contains("\"records\":10.0"));
        assert!(json.contains("\"frac\":0.25"));
        assert!(!json.contains("depth"));
    }

    #[test]
    fn non_finite_fields_become_null() {
        let mut e = event(EventKind::Point);
        e.fields = vec![("bad", f64::NAN), ("worse", f64::INFINITY)];
        let json = e.to_json();
        assert!(json.contains("\"bad\":null"));
        assert!(json.contains("\"worse\":null"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn drops_line_shape() {
        assert_eq!(drops_line(3), "{\"ev\":\"drops\",\"count\":3}");
    }
}

//! Single source of truth for every telemetry name in the workspace.
//!
//! Span names, point-event names, and metric base names used anywhere in
//! DistStream are declared here and nowhere else. Call sites reference the
//! constants (compile-time safety); `cargo xtask analyze` additionally
//! verifies that every string literal reaching `span!`, `emit_point`,
//! [`counter`](crate::counter), [`gauge`](crate::gauge), or
//! [`histogram`](crate::histogram) resolves against this catalog — catching
//! typos in label-formatted names the type system cannot see — and that no
//! catalog entry is dead (declared but never emitted).
//!
//! Conventions:
//!
//! - span and point names are short snake_case phase names (they appear in
//!   the JSONL journal, once per event);
//! - metric names carry the `diststream_` prefix and Prometheus unit
//!   suffixes (`_total` for counters, `_secs` for time);
//! - labels are encoded Prometheus-style into the registered name
//!   (`name{key="value"}`); only the base name (up to `{`) is cataloged.

// --- Span names (open/close pairs in the journal) ---

/// One mini-batch end to end on the driver.
pub const SPAN_BATCH: &str = "batch";
/// Step 1: distance computation / assignment over the stale model.
pub const SPAN_ASSIGNMENT: &str = "assignment";
/// Step 2: order-aware local update (fold records into sketches).
pub const SPAN_LOCAL_UPDATE: &str = "local_update";
/// Step 3: global update on the driver.
pub const SPAN_GLOBAL_UPDATE: &str = "global_update";
/// One parallel task step inside the engine (TaskPool or thread mode).
pub const SPAN_STEP_TASKS: &str = "step_tasks";
/// Background ingest/reorder of the next batch (overlapped pipeline).
pub const SPAN_PREFETCH: &str = "prefetch";
/// Map-side combine of same-key updates before the shuffle.
pub const SPAN_COMBINE: &str = "combine";
/// Durable checkpoint frame write (encode + store persist).
pub const SPAN_CHECKPOINT_WRITE: &str = "checkpoint_write";
/// Checkpoint recovery walk (manifest scan + frame decode).
pub const SPAN_CHECKPOINT_RESTORE: &str = "checkpoint_restore";
/// Synthetic span emitted by the `trace_smoke` bench session self-test.
pub const SPAN_SESSION_TEST: &str = "session_test";
/// Elastic rebalance at a batch boundary (plan + replay + verify).
pub const SPAN_REBALANCE: &str = "rebalance";
/// Serving-snapshot publish at a batch boundary (encode + swap).
pub const SPAN_SNAPSHOT_PUBLISH: &str = "snapshot_publish";

/// Every span name, for conformance checks and journal validators.
pub const ALL_SPANS: &[&str] = &[
    SPAN_BATCH,
    SPAN_ASSIGNMENT,
    SPAN_LOCAL_UPDATE,
    SPAN_GLOBAL_UPDATE,
    SPAN_STEP_TASKS,
    SPAN_PREFETCH,
    SPAN_COMBINE,
    SPAN_CHECKPOINT_WRITE,
    SPAN_CHECKPOINT_RESTORE,
    SPAN_SESSION_TEST,
    SPAN_REBALANCE,
    SPAN_SNAPSHOT_PUBLISH,
];

// --- Point-event names (single journal events with numeric fields) ---

/// Per-batch critical-path breakdown emitted once per mini-batch.
pub const POINT_BATCH_SUMMARY: &str = "batch_summary";
/// Per-batch event-time → model-integration latency percentiles.
pub const POINT_RECORD_LATENCY: &str = "record_latency";
/// One parallel task's effective duration (fields `step`, `index`, `secs`),
/// the raw material for what-if scaling replay in `trace-analyze`.
pub const POINT_TASK_DURATION: &str = "task_duration";
/// Per-batch overload-control summary (seen/kept/shed counts, keep-rate,
/// error bound, backlog, virtual latency) emitted when sampling is active.
pub const POINT_OVERLOAD_SUMMARY: &str = "overload_summary";

/// Every point-event name.
pub const ALL_POINTS: &[&str] = &[
    POINT_BATCH_SUMMARY,
    POINT_RECORD_LATENCY,
    POINT_TASK_DURATION,
    POINT_OVERLOAD_SUMMARY,
];

// --- Metric base names (registry counters/gauges/histograms) ---

/// Counter: mini-batches completed.
pub const METRIC_BATCHES_TOTAL: &str = "diststream_batches_total";
/// Counter: records folded into the model.
pub const METRIC_RECORDS_TOTAL: &str = "diststream_records_total";
/// Counter: model-broadcast bytes shipped driver → tasks.
pub const METRIC_BROADCAST_BYTES_TOTAL: &str = "diststream_broadcast_bytes_total";
/// Counter: shuffle bytes shipped between assignment and local update.
pub const METRIC_SHUFFLE_BYTES_TOTAL: &str = "diststream_shuffle_bytes_total";
/// Counter: shuffle bytes avoided by the map-side combine.
pub const METRIC_SHUFFLE_BYTES_SAVED_TOTAL: &str = "diststream_shuffle_bytes_saved_total";
/// Counter: tasks whose wall time crossed the straggler threshold.
pub const METRIC_STRAGGLER_TASKS_TOTAL: &str = "diststream_straggler_tasks_total";
/// Counter (labels `step`, `task`): straggler culprit attribution.
pub const METRIC_STRAGGLER_CULPRIT_TOTAL: &str = "diststream_straggler_culprit_total";
/// Gauge (label `step`): slowest-task / mean-task skew ratio.
pub const METRIC_STRAGGLER_SKEW_RATIO: &str = "diststream_straggler_skew_ratio";
/// Gauge (label `step`): non-compute fraction of a step's wall time.
pub const METRIC_STEP_OVERHEAD_FRACTION: &str = "diststream_step_overhead_fraction";
/// Histogram: end-to-end seconds per mini-batch.
pub const METRIC_BATCH_TOTAL_SECS: &str = "diststream_batch_total_secs";
/// Counter: tasks re-executed by the retry layer.
pub const METRIC_TASKS_RETRIED_TOTAL: &str = "diststream_tasks_retried_total";
/// Counter: tasks executed by the TaskPool.
pub const METRIC_POOL_TASKS_TOTAL: &str = "diststream_pool_tasks_total";
/// Histogram: per-task wall seconds in the TaskPool.
pub const METRIC_POOL_TASK_SECS: &str = "diststream_pool_task_secs";
/// Gauge: configured mini-batch window seconds.
pub const METRIC_BATCH_WINDOW_SECS: &str = "diststream_batch_window_secs";
/// Histogram: records per mini-batch.
pub const METRIC_BATCH_RECORDS: &str = "diststream_batch_records";
/// Gauge: reorder-buffer depth at release points.
pub const METRIC_REORDER_DEPTH: &str = "diststream_reorder_depth";
/// Histogram: event-time stall seconds in the reorder buffer.
pub const METRIC_REORDER_STALL_SECS: &str = "diststream_reorder_stall_secs";
/// Counter: records dropped for arriving past the lateness bound.
pub const METRIC_REORDER_DROPPED_LATE_TOTAL: &str = "diststream_reorder_dropped_late_total";
/// Counter: duplicate deliveries dropped at the release point.
pub const METRIC_REORDER_DROPPED_DUPLICATE_TOTAL: &str =
    "diststream_reorder_dropped_duplicate_total";
/// Counter (label `kind`): simulated network bytes by transfer kind.
pub const METRIC_NETCOST_BYTES_TOTAL: &str = "diststream_netcost_bytes_total";
/// Gauge (label `kind`): simulated network seconds by transfer kind.
pub const METRIC_NETCOST_SECS: &str = "diststream_netcost_secs";
/// Counter: poisoned batches skipped after retry exhaustion.
pub const METRIC_BATCHES_SKIPPED_TOTAL: &str = "diststream_batches_skipped_total";
/// Counter: corrupt checkpoint frames skipped during recovery.
pub const METRIC_CHECKPOINT_FALLBACKS_TOTAL: &str = "diststream_checkpoint_fallbacks_total";
/// Counter: metric registrations rejected for a name/type conflict.
pub const METRIC_NAME_CONFLICTS_TOTAL: &str = "diststream_telemetry_name_conflicts_total";
/// Histogram: event-time to model-integration latency per record, seconds.
pub const METRIC_RECORD_LATENCY_SECS: &str = "diststream_record_latency_secs";
/// Counter: journal events lost to a missing sink or swallowed write errors.
pub const METRIC_JOURNAL_EVENTS_DROPPED_TOTAL: &str = "diststream_journal_events_dropped_total";
/// Counter (label `strategy`): shuffle bytes charged per distribution
/// strategy.
pub const METRIC_STRATEGY_SHUFFLE_BYTES_TOTAL: &str = "diststream_strategy_shuffle_bytes_total";
/// Counter: elastic rebalances executed at batch boundaries.
pub const METRIC_REBALANCE_TOTAL: &str = "diststream_rebalance_total";
/// Counter: keys whose placement moved across an elastic rebalance.
pub const METRIC_REBALANCE_MOVED_KEYS_TOTAL: &str = "diststream_rebalance_moved_keys_total";
/// Counter: checkpoint bytes replayed to verify an elastic rebalance.
pub const METRIC_REBALANCE_REPLAYED_BYTES_TOTAL: &str = "diststream_rebalance_replayed_bytes_total";
/// Counter: elastic rebalances rolled back after a mid-resize failure.
pub const METRIC_REBALANCE_ROLLBACKS_TOTAL: &str = "diststream_rebalance_rollbacks_total";
/// Counter: records offered to the stratified sampler.
pub const METRIC_SAMPLER_SEEN_TOTAL: &str = "diststream_sampler_seen_total";
/// Counter: records kept by the stratified sampler.
pub const METRIC_SAMPLER_KEPT_TOTAL: &str = "diststream_sampler_kept_total";
/// Counter: records shed by the stratified sampler.
pub const METRIC_SAMPLER_SHED_TOTAL: &str = "diststream_sampler_shed_total";
/// Gauge: current global sampler keep-rate, parts-per-million.
pub const METRIC_SAMPLER_RATE_PPM: &str = "diststream_sampler_rate_ppm";
/// Gauge: worst-case 95% Horvitz-Thompson error bound of the kept sample.
pub const METRIC_SAMPLER_ERROR_BOUND: &str = "diststream_sampler_error_bound";
/// Gauge: backpressure-modeled backlog, records queued beyond capacity.
pub const METRIC_BACKPRESSURE_BACKLOG_RECORDS: &str = "diststream_backpressure_backlog_records";
/// Gauge: virtual latency of the next record under the service model.
pub const METRIC_BACKPRESSURE_VIRTUAL_LATENCY_SECS: &str =
    "diststream_backpressure_virtual_latency_secs";
/// Counter: serving snapshots published at batch boundaries.
pub const METRIC_SERVING_PUBLISHES_TOTAL: &str = "diststream_serving_publishes_total";
/// Counter: nearest-cluster predicts answered from serving snapshots.
pub const METRIC_SERVING_PREDICTS_TOTAL: &str = "diststream_serving_predicts_total";
/// Gauge: epoch (batch index) of the latest published serving snapshot.
pub const METRIC_SERVING_EPOCH: &str = "diststream_serving_epoch";

/// Every metric base name.
pub const ALL_METRICS: &[&str] = &[
    METRIC_BATCHES_TOTAL,
    METRIC_RECORDS_TOTAL,
    METRIC_BROADCAST_BYTES_TOTAL,
    METRIC_SHUFFLE_BYTES_TOTAL,
    METRIC_SHUFFLE_BYTES_SAVED_TOTAL,
    METRIC_STRAGGLER_TASKS_TOTAL,
    METRIC_STRAGGLER_CULPRIT_TOTAL,
    METRIC_STRAGGLER_SKEW_RATIO,
    METRIC_STEP_OVERHEAD_FRACTION,
    METRIC_BATCH_TOTAL_SECS,
    METRIC_TASKS_RETRIED_TOTAL,
    METRIC_POOL_TASKS_TOTAL,
    METRIC_POOL_TASK_SECS,
    METRIC_BATCH_WINDOW_SECS,
    METRIC_BATCH_RECORDS,
    METRIC_REORDER_DEPTH,
    METRIC_REORDER_STALL_SECS,
    METRIC_REORDER_DROPPED_LATE_TOTAL,
    METRIC_REORDER_DROPPED_DUPLICATE_TOTAL,
    METRIC_NETCOST_BYTES_TOTAL,
    METRIC_NETCOST_SECS,
    METRIC_BATCHES_SKIPPED_TOTAL,
    METRIC_CHECKPOINT_FALLBACKS_TOTAL,
    METRIC_NAME_CONFLICTS_TOTAL,
    METRIC_RECORD_LATENCY_SECS,
    METRIC_JOURNAL_EVENTS_DROPPED_TOTAL,
    METRIC_STRATEGY_SHUFFLE_BYTES_TOTAL,
    METRIC_REBALANCE_TOTAL,
    METRIC_REBALANCE_MOVED_KEYS_TOTAL,
    METRIC_REBALANCE_REPLAYED_BYTES_TOTAL,
    METRIC_REBALANCE_ROLLBACKS_TOTAL,
    METRIC_SAMPLER_SEEN_TOTAL,
    METRIC_SAMPLER_KEPT_TOTAL,
    METRIC_SAMPLER_SHED_TOTAL,
    METRIC_SAMPLER_RATE_PPM,
    METRIC_SAMPLER_ERROR_BOUND,
    METRIC_BACKPRESSURE_BACKLOG_RECORDS,
    METRIC_BACKPRESSURE_VIRTUAL_LATENCY_SECS,
    METRIC_SERVING_PUBLISHES_TOTAL,
    METRIC_SERVING_PREDICTS_TOTAL,
    METRIC_SERVING_EPOCH,
];

/// Prometheus `# HELP` text per metric base name. The doc comments above are
/// the source of truth for humans; this table mirrors them at runtime so the
/// exposition endpoint can emit `# HELP` lines (doc comments are not
/// available to the compiled binary). A test below pins full coverage.
pub const METRIC_HELP: &[(&str, &str)] = &[
    (METRIC_BATCHES_TOTAL, "Mini-batches completed"),
    (METRIC_RECORDS_TOTAL, "Records folded into the model"),
    (
        METRIC_BROADCAST_BYTES_TOTAL,
        "Model-broadcast bytes shipped driver to tasks",
    ),
    (
        METRIC_SHUFFLE_BYTES_TOTAL,
        "Shuffle bytes shipped between assignment and local update",
    ),
    (
        METRIC_SHUFFLE_BYTES_SAVED_TOTAL,
        "Shuffle bytes avoided by the map-side combine",
    ),
    (
        METRIC_STRAGGLER_TASKS_TOTAL,
        "Tasks whose wall time crossed the straggler threshold",
    ),
    (
        METRIC_STRAGGLER_CULPRIT_TOTAL,
        "Straggler culprit attribution by step and task",
    ),
    (
        METRIC_STRAGGLER_SKEW_RATIO,
        "Slowest-task / mean-task skew ratio per step",
    ),
    (
        METRIC_STEP_OVERHEAD_FRACTION,
        "Non-compute fraction of a step's wall time",
    ),
    (METRIC_BATCH_TOTAL_SECS, "End-to-end seconds per mini-batch"),
    (
        METRIC_TASKS_RETRIED_TOTAL,
        "Tasks re-executed by the retry layer",
    ),
    (METRIC_POOL_TASKS_TOTAL, "Tasks executed by the TaskPool"),
    (
        METRIC_POOL_TASK_SECS,
        "Per-task wall seconds in the TaskPool",
    ),
    (
        METRIC_BATCH_WINDOW_SECS,
        "Configured mini-batch window seconds",
    ),
    (METRIC_BATCH_RECORDS, "Records per mini-batch"),
    (
        METRIC_REORDER_DEPTH,
        "Reorder-buffer depth at release points",
    ),
    (
        METRIC_REORDER_STALL_SECS,
        "Event-time stall seconds in the reorder buffer",
    ),
    (
        METRIC_REORDER_DROPPED_LATE_TOTAL,
        "Records dropped for arriving past the lateness bound",
    ),
    (
        METRIC_REORDER_DROPPED_DUPLICATE_TOTAL,
        "Duplicate deliveries dropped at the release point",
    ),
    (
        METRIC_NETCOST_BYTES_TOTAL,
        "Simulated network bytes by transfer kind",
    ),
    (
        METRIC_NETCOST_SECS,
        "Simulated network seconds by transfer kind",
    ),
    (
        METRIC_BATCHES_SKIPPED_TOTAL,
        "Poisoned batches skipped after retry exhaustion",
    ),
    (
        METRIC_CHECKPOINT_FALLBACKS_TOTAL,
        "Corrupt checkpoint frames skipped during recovery",
    ),
    (
        METRIC_NAME_CONFLICTS_TOTAL,
        "Metric registrations rejected for a name/type conflict",
    ),
    (
        METRIC_RECORD_LATENCY_SECS,
        "Event-time to model-integration latency per record in seconds",
    ),
    (
        METRIC_JOURNAL_EVENTS_DROPPED_TOTAL,
        "Journal events lost to a missing sink or swallowed write errors",
    ),
    (
        METRIC_STRATEGY_SHUFFLE_BYTES_TOTAL,
        "Shuffle bytes charged per distribution strategy",
    ),
    (
        METRIC_REBALANCE_TOTAL,
        "Elastic rebalances executed at batch boundaries",
    ),
    (
        METRIC_REBALANCE_MOVED_KEYS_TOTAL,
        "Keys whose placement moved across an elastic rebalance",
    ),
    (
        METRIC_REBALANCE_REPLAYED_BYTES_TOTAL,
        "Checkpoint bytes replayed to verify an elastic rebalance",
    ),
    (
        METRIC_REBALANCE_ROLLBACKS_TOTAL,
        "Elastic rebalances rolled back after a mid-resize failure",
    ),
    (
        METRIC_SAMPLER_SEEN_TOTAL,
        "Records offered to the stratified sampler",
    ),
    (
        METRIC_SAMPLER_KEPT_TOTAL,
        "Records kept by the stratified sampler",
    ),
    (
        METRIC_SAMPLER_SHED_TOTAL,
        "Records shed by the stratified sampler",
    ),
    (
        METRIC_SAMPLER_RATE_PPM,
        "Current global sampler keep-rate in parts-per-million",
    ),
    (
        METRIC_SAMPLER_ERROR_BOUND,
        "Worst-case 95% Horvitz-Thompson error bound of the kept sample",
    ),
    (
        METRIC_BACKPRESSURE_BACKLOG_RECORDS,
        "Backpressure-modeled backlog in records queued beyond capacity",
    ),
    (
        METRIC_BACKPRESSURE_VIRTUAL_LATENCY_SECS,
        "Virtual latency of the next record under the service model",
    ),
    (
        METRIC_SERVING_PUBLISHES_TOTAL,
        "Serving snapshots published at batch boundaries",
    ),
    (
        METRIC_SERVING_PREDICTS_TOTAL,
        "Nearest-cluster predicts answered from serving snapshots",
    ),
    (
        METRIC_SERVING_EPOCH,
        "Epoch of the latest published serving snapshot",
    ),
];

/// `# HELP` text for `name` — with any `{label="…"}` suffix stripped —
/// when the base name is cataloged.
pub fn help(name: &str) -> Option<&'static str> {
    let base = match name.find('{') {
        Some(idx) => &name[..idx],
        None => name,
    };
    METRIC_HELP
        .iter()
        .find(|(metric, _)| *metric == base)
        .map(|(_, text)| *text)
}

/// Whether `name` is a cataloged span name.
pub fn is_span(name: &str) -> bool {
    ALL_SPANS.contains(&name)
}

/// Whether `name` is a cataloged point-event name.
pub fn is_point(name: &str) -> bool {
    ALL_POINTS.contains(&name)
}

/// Whether `name` — with any `{label="…"}` suffix stripped — is a cataloged
/// metric base name.
pub fn is_metric(name: &str) -> bool {
    let base = match name.find('{') {
        Some(idx) => &name[..idx],
        None => name,
    };
    ALL_METRICS.contains(&base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_are_duplicate_free_and_sorted_membership_works() {
        for list in [ALL_SPANS, ALL_POINTS, ALL_METRICS] {
            let mut seen = std::collections::BTreeSet::new();
            for name in list {
                assert!(seen.insert(*name), "duplicate catalog entry {name:?}");
            }
        }
        assert!(is_span("batch"));
        assert!(!is_span("diststream_batches_total"));
        assert!(is_point("batch_summary"));
        assert!(is_metric("diststream_batches_total"));
        assert!(!is_metric("batch"));
    }

    #[test]
    fn metric_names_follow_conventions() {
        for name in ALL_METRICS {
            assert!(
                name.starts_with("diststream_"),
                "{name:?} lacks the diststream_ prefix"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name:?} has non-snake_case characters"
            );
        }
        for name in ALL_SPANS.iter().chain(ALL_POINTS) {
            assert!(
                !name.starts_with("diststream_"),
                "span/point {name:?} must not carry the metric prefix"
            );
        }
    }

    #[test]
    fn labeled_names_resolve_to_base() {
        assert!(is_metric(
            "diststream_netcost_bytes_total{kind=\"broadcast\"}"
        ));
        assert!(is_metric(
            "diststream_straggler_culprit_total{step=\"assignment\",task=\"3\"}"
        ));
        assert!(!is_metric("diststream_netcost_bytes_totale{kind=\"x\"}"));
    }

    #[test]
    fn every_metric_has_help_and_no_stray_help_entries() {
        for name in ALL_METRICS {
            let text = help(name).unwrap_or_else(|| panic!("{name:?} lacks # HELP text"));
            assert!(!text.is_empty(), "{name:?} has empty # HELP text");
            assert!(
                !text.contains('\n') && !text.contains('\\'),
                "{name:?} help needs no exposition escaping by construction"
            );
        }
        for (name, _) in METRIC_HELP {
            assert!(is_metric(name), "help entry {name:?} is not cataloged");
        }
        assert_eq!(help("no_such_metric"), None);
        // Labeled lookups resolve through the base name.
        assert_eq!(
            help("diststream_netcost_bytes_total{kind=\"broadcast\"}"),
            help("diststream_netcost_bytes_total")
        );
    }
}

//! # diststream-telemetry
//!
//! Dependency-free structured tracing and metrics for the DistStream
//! workspace: a span-scoped JSONL event journal, a typed metrics registry
//! with Prometheus-style exposition, and the plumbing the engine uses for
//! straggler/backpressure attribution.
//!
//! ## Design in one paragraph
//!
//! Instrumentation sites open spans with the [`span!`] macro; each span
//! records an `open`/`close` event pair into a per-thread buffer (plain
//! `Vec` pushes — no locks on the hot path). Worker threads flush their
//! buffers automatically when they exit at the step barrier; the driver
//! then calls [`barrier_drain`] once per mini-batch to move everything
//! into the installed sink — a JSONL file (`--trace-out`) or an in-memory
//! capture for tests. Metrics ([`counter`], [`gauge`], [`histogram`]) are
//! lock-free atomic handles registered by name and rendered at run end via
//! [`expose`] (Prometheus text) or [`summary_rows`] (human table).
//!
//! ## Observation-only guarantee
//!
//! Telemetry never feeds back into computation: timestamps come from the
//! single sanctioned monotonic clock in [`clock`], and nothing the
//! subsystem records influences batching, scheduling, or model state. The
//! workspace determinism suite runs with tracing enabled to enforce this
//! (bit-identical merged models, tracing on vs off, threads 1 vs 4).
//!
//! ## Overhead budget
//!
//! Disabled (the default): one `SeqCst` load per instrumentation site.
//! Enabled: two `Instant` reads and two `Vec` pushes per span, amortized
//! buffer drains at batch barriers only.

#![forbid(unsafe_code)]

pub mod clock;
pub mod journal;
pub mod metrics;
pub mod names;
pub mod span;

pub use journal::{
    barrier_drain, close_journal, dropped_events, set_journal_capture, set_journal_file,
    take_events, Event, EventKind, JOURNAL_VERSION,
};
pub use metrics::{
    counter, expose, gauge, histogram, interpolate_quantile, summary_rows, Counter, Gauge,
    Histogram, SummaryRow,
};
pub use span::{emit_point, enabled, open_span, set_enabled, SpanGuard};

/// Convenience session setup: enables tracing and installs a JSONL file
/// sink at `path` (truncating it). Pair with [`finish_file_session`].
///
/// # Errors
///
/// Returns the I/O error if the journal file cannot be created; tracing is
/// left disabled in that case.
pub fn start_file_session(path: &std::path::Path) -> std::io::Result<()> {
    set_journal_file(path)?;
    set_enabled(true);
    Ok(())
}

/// Ends a file session: performs a final drain, disables tracing, surfaces
/// the session's lost-event count as the
/// [`names::METRIC_JOURNAL_EVENTS_DROPPED_TOTAL`] counter (registered even
/// at zero, so the exposition always answers "was anything dropped?"), and
/// closes the journal (flushing the file, with a `drops` trailer line when
/// events were lost).
pub fn finish_file_session() {
    barrier_drain();
    set_enabled(false);
    counter(names::METRIC_JOURNAL_EVENTS_DROPPED_TOTAL).add(dropped_events());
    close_journal();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global journal state; serialize them.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn spans_record_open_close_pairs() {
        let _guard = lock();
        set_journal_capture();
        set_enabled(true);
        {
            let _outer = span!("outer", batch = 3);
            let _inner = span!("inner", batch = 3, task = 1);
        }
        barrier_drain();
        set_enabled(false);
        let events = close_journal();
        let spans: Vec<_> = events.iter().filter(|e| e.name == "outer").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, EventKind::Open);
        assert_eq!(spans[1].kind, EventKind::Close);
        assert_eq!(spans[0].batch, Some(3));
        let inner: Vec<_> = events.iter().filter(|e| e.name == "inner").collect();
        assert_eq!(inner.len(), 2);
        assert_eq!(inner[0].task, Some(1));
        // Inner opened after outer, at one level deeper.
        assert_eq!(inner[0].depth, spans[0].depth + 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = lock();
        set_journal_capture();
        set_enabled(false);
        {
            let _span = span!("ghost");
            emit_point("ghost_point", None, &[("x", 1.0)]);
        }
        barrier_drain();
        let events = close_journal();
        assert!(events.iter().all(|e| !e.name.starts_with("ghost")));
    }

    #[test]
    fn guard_closes_silently_if_disabled_mid_span() {
        let _guard = lock();
        set_journal_capture();
        set_enabled(false);
        let open = span!("toggle");
        set_enabled(true);
        drop(open);
        set_enabled(false);
        barrier_drain();
        let events = close_journal();
        assert!(events.iter().all(|e| e.name != "toggle"));
    }

    #[test]
    fn point_events_carry_fields() {
        let _guard = lock();
        set_journal_capture();
        set_enabled(true);
        emit_point("batch_summary", Some(7), &[("total_secs", 0.5)]);
        barrier_drain();
        set_enabled(false);
        let events = close_journal();
        let point = events
            .iter()
            .find(|e| e.name == "batch_summary")
            .expect("point recorded");
        assert_eq!(point.kind, EventKind::Point);
        assert_eq!(point.batch, Some(7));
        assert_eq!(point.fields, vec![("total_secs", 0.5)]);
    }

    #[test]
    fn file_session_surfaces_drops_as_counter_and_trailer() {
        let _guard = lock();
        let dir = std::env::temp_dir();
        let clean = dir.join(format!(
            "diststream-journal-clean-{}.jsonl",
            std::process::id()
        ));
        let truncated = dir.join(format!(
            "diststream-journal-drops-{}.jsonl",
            std::process::id()
        ));

        metrics::reset();
        start_file_session(&clean).expect("create journal");
        finish_file_session();
        assert_eq!(
            counter(names::METRIC_JOURNAL_EVENTS_DROPPED_TOTAL).get(),
            0,
            "clean session counted drops"
        );
        let contents = std::fs::read_to_string(&clean).expect("read journal");
        assert!(
            !contents.contains("\"ev\":\"drops\""),
            "clean journal got a drops trailer: {contents:?}"
        );

        metrics::reset();
        start_file_session(&truncated).expect("create journal");
        journal::force_write_errors(2);
        finish_file_session();
        assert_eq!(counter(names::METRIC_JOURNAL_EVENTS_DROPPED_TOTAL).get(), 2);
        let contents = std::fs::read_to_string(&truncated).expect("read journal");
        assert!(
            contents.ends_with("{\"ev\":\"drops\",\"count\":2}\n"),
            "missing drops trailer: {contents:?}"
        );

        let _ = std::fs::remove_file(&clean);
        let _ = std::fs::remove_file(&truncated);
    }

    #[test]
    fn worker_thread_buffers_flush_on_exit() {
        let _guard = lock();
        set_journal_capture();
        set_enabled(true);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _span = span!("worker_side");
            });
        });
        barrier_drain();
        set_enabled(false);
        let events = close_journal();
        let count = events.iter().filter(|e| e.name == "worker_side").count();
        assert_eq!(count, 2);
    }
}

//! Span recording: RAII guards writing into lock-free per-thread buffers.
//!
//! Opening a span appends an `open` event to the calling thread's local
//! buffer and dropping the guard appends the matching `close` — plain
//! `Vec` pushes, no locks or atomics beyond the one global enable check.
//! Buffers reach the journal in two ways:
//!
//! - the driver thread flushes explicitly inside the barrier drain;
//! - worker threads flush automatically when they exit (the thread-local
//!   buffer's `Drop` runs as the `crossbeam` scope joins, *before* the
//!   step barrier releases the driver), so a barrier drain always sees a
//!   complete picture of the batch that just finished.
//!
//! Guards close in LIFO order by construction (Rust drop order), so spans
//! on one thread always nest; the journal records depth so `xtask
//! check-trace` and the integrity tests can verify it end to end.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::clock;
use crate::journal::{self, Event, EventKind};

/// Global switch. When off, span guards and point events are no-ops whose
/// only cost is one atomic load at the call site.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Next per-thread ordinal (assigned lazily at a thread's first event).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Whether telemetry recording is enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Turns recording on or off. Enabling does not install a journal sink —
/// see [`journal::set_journal_file`] / [`journal::set_journal_capture`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

struct ThreadBuffer {
    thread: u64,
    seq: u64,
    depth: u16,
    events: Vec<Event>,
}

impl ThreadBuffer {
    fn new() -> Self {
        ThreadBuffer {
            thread: NEXT_THREAD.fetch_add(1, Ordering::SeqCst),
            seq: 0,
            depth: 0,
            events: Vec::with_capacity(64),
        }
    }

    fn push(&mut self, kind: EventKind, name: &'static str, record: &SpanRecord) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event {
            kind,
            name,
            thread: self.thread,
            seq,
            depth: record.depth,
            t_us: clock::ns_to_us(record.t_ns),
            dur_us: clock::ns_to_us(record.dur_ns),
            batch: record.batch,
            task: record.task,
            fields: record.fields.clone(),
        });
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        journal::push_pending(&mut self.events);
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer::new());
}

struct SpanRecord {
    depth: u16,
    t_ns: u64,
    dur_ns: u64,
    batch: Option<u64>,
    task: Option<u64>,
    fields: Vec<(&'static str, f64)>,
}

/// Flushes the calling thread's buffer into the journal's pending queue.
pub fn flush_thread() {
    BUFFER.with(|b| {
        if let Ok(mut buffer) = b.try_borrow_mut() {
            let mut events = std::mem::take(&mut buffer.events);
            journal::push_pending(&mut events);
        }
    });
}

/// An open span; dropping it records the close event. Created by
/// [`open_span`] (usually through the [`span!`](crate::span!) macro).
#[must_use = "a span measures the scope it is bound to; use `let _span = span!(…)`"]
pub struct SpanGuard {
    /// `Some` while the span is recording (telemetry was enabled at open).
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    start_ns: u64,
    depth: u16,
    batch: Option<u64>,
    task: Option<u64>,
}

/// Opens a span. Records nothing (and costs one atomic load) when
/// telemetry is disabled; the guard then closes silently even if telemetry
/// is enabled before the drop, so opens and closes always pair up.
pub fn open_span(name: &'static str, batch: Option<u64>, task: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let start_ns = clock::now_ns();
    let depth = BUFFER.with(|b| {
        let Ok(mut buffer) = b.try_borrow_mut() else {
            return None;
        };
        let depth = buffer.depth;
        buffer.depth = depth.saturating_add(1);
        let record = SpanRecord {
            depth,
            t_ns: start_ns,
            dur_ns: 0,
            batch,
            task,
            fields: Vec::new(),
        };
        buffer.push(EventKind::Open, name, &record);
        Some(depth)
    });
    match depth {
        Some(depth) => SpanGuard {
            open: Some(OpenSpan {
                name,
                start_ns,
                depth,
                batch,
                task,
            }),
        },
        None => SpanGuard { open: None },
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let now = clock::now_ns();
        BUFFER.with(|b| {
            let Ok(mut buffer) = b.try_borrow_mut() else {
                return;
            };
            buffer.depth = buffer.depth.saturating_sub(1);
            let record = SpanRecord {
                depth: open.depth,
                t_ns: now,
                dur_ns: now.saturating_sub(open.start_ns),
                batch: open.batch,
                task: open.task,
                fields: Vec::new(),
            };
            buffer.push(EventKind::Close, open.name, &record);
        });
    }
}

/// Records a named point event with numeric fields (batch-scoped when
/// `batch` is `Some`). No-op when telemetry is disabled.
pub fn emit_point(name: &'static str, batch: Option<u64>, fields: &[(&'static str, f64)]) {
    if !enabled() {
        return;
    }
    let t_ns = clock::now_ns();
    BUFFER.with(|b| {
        let Ok(mut buffer) = b.try_borrow_mut() else {
            return;
        };
        let record = SpanRecord {
            depth: 0,
            t_ns,
            dur_ns: 0,
            batch,
            task: None,
            fields: fields.to_vec(),
        };
        buffer.push(EventKind::Point, name, &record);
    });
}

/// Opens a scope-bound span: `let _span = span!("local_update", batch = i);`
///
/// Accepted forms: `span!(name)`, `span!(name, batch = expr)`,
/// `span!(name, task = expr)`, `span!(name, batch = expr, task = expr)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::open_span($name, None, None)
    };
    ($name:expr, batch = $b:expr) => {
        $crate::span::open_span($name, Some($b as u64), None)
    };
    ($name:expr, task = $t:expr) => {
        $crate::span::open_span($name, None, Some($t as u64))
    };
    ($name:expr, batch = $b:expr, task = $t:expr) => {
        $crate::span::open_span($name, Some($b as u64), Some($t as u64))
    };
}

//! Typed metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Metrics are identified by name; labels are encoded into the name in
//! Prometheus style (`straggler_culprit_total{task="3"}`). Handles are
//! `Arc`s over atomics, so hot paths register once, cache the handle, and
//! update it lock-free; the registry lock is only taken at registration
//! and exposition time.
//!
//! Floating-point gauges and histogram sums store `f64::to_bits` in an
//! `AtomicU64` — standard lock-free float storage.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::SeqCst);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

/// A last-write-wins floating-point gauge that also tracks its maximum.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge, updating the running maximum.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::SeqCst);
        // CAS loop keeps the max correct under concurrent setters.
        let mut current = self.max_bits.load(Ordering::SeqCst);
        while value > f64::from_bits(current) {
            match self.max_bits.compare_exchange(
                current,
                value.to_bits(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }

    /// Largest value ever set (`None` before the first `set`).
    pub fn max(&self) -> Option<f64> {
        let max = f64::from_bits(self.max_bits.load(Ordering::SeqCst));
        if max == f64::NEG_INFINITY {
            None
        } else {
            Some(max)
        }
    }
}

/// A histogram with caller-fixed upper bucket bounds plus an implicit
/// `+Inf` bucket, tracking count and sum like Prometheus.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is `+Inf`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::SeqCst);
        self.count.fetch_add(1, Ordering::SeqCst);
        // CAS loop for the float sum.
        let mut current = self.sum_bits.load(Ordering::SeqCst);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self
                .sum_bits
                .compare_exchange(current, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::SeqCst))
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() / count as f64
        }
    }

    /// Cumulative counts per bound, Prometheus `le` semantics; the final
    /// entry is the `+Inf` bucket (== total count).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut running = 0;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (i, bucket) in self.buckets.iter().enumerate() {
            running += bucket.load(Ordering::SeqCst);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, running));
        }
        out
    }

    /// Folds a pre-bucketed batch of observations into the histogram:
    /// per-bucket (non-cumulative) counts aligned with this histogram's
    /// bounds plus the `+Inf` bucket, and the batch's observation sum.
    ///
    /// Used by emitters that already bucketed their observations (e.g. the
    /// engine's per-batch record-latency accounting) so one registry call
    /// replaces thousands of `observe` calls. Counts beyond this
    /// histogram's bucket count land in `+Inf` rather than being lost.
    pub fn add_bucketed(&self, bucket_counts: &[u64], sum: f64) {
        let mut total = 0u64;
        let last = self.buckets.len() - 1;
        for (i, &n) in bucket_counts.iter().enumerate() {
            self.buckets[i.min(last)].fetch_add(n, Ordering::SeqCst);
            total += n;
        }
        if total == 0 {
            return;
        }
        self.count.fetch_add(total, Ordering::SeqCst);
        let mut current = self.sum_bits.load(Ordering::SeqCst);
        loop {
            let next = (f64::from_bits(current) + sum).to_bits();
            match self
                .sum_bits
                .compare_exchange(current, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Interpolated quantile estimate over the current buckets — see
    /// [`interpolate_quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        interpolate_quantile(&self.cumulative(), q)
    }
}

/// Estimates the `q`-quantile (`q` in `[0, 1]`) from cumulative
/// fixed-bucket counts in [`Histogram::cumulative`] form, assuming
/// observations are uniformly distributed within each bucket — the same
/// linear interpolation Prometheus' `histogram_quantile` applies.
///
/// The target rank `q·count` is located in the first bucket whose
/// cumulative count reaches it, then interpolated between the bucket's
/// edges (the first finite bucket interpolates up from 0, matching this
/// workspace's all-positive bounds). A rank already met by the buckets
/// *below* the located one — `q = 0`, or a rank landing exactly on a
/// bucket boundary under an empty bucket — resolves to the bucket's lower
/// edge, since no observation inside the bucket is needed to reach it. A
/// rank landing in the `+Inf` bucket clamps to the largest finite bound —
/// the histogram cannot resolve beyond it. Returns 0.0 for an empty
/// histogram.
pub fn interpolate_quantile(cumulative: &[(f64, u64)], q: f64) -> f64 {
    let total = match cumulative.last() {
        Some(&(_, total)) if total > 0 => total as f64,
        _ => return 0.0,
    };
    let rank = q.clamp(0.0, 1.0) * total;
    let mut lower_edge = 0.0;
    let mut below = 0u64;
    for &(bound, running) in cumulative {
        if (running as f64) >= rank {
            if rank <= below as f64 {
                // The rank is on this bucket's lower boundary: everything
                // below already covers it, so the estimate is the lower
                // edge — not the upper bound, which the pre-fix code
                // returned for q = 0 landing in an empty leading bucket.
                return lower_edge;
            }
            if bound.is_infinite() {
                // Cannot interpolate to infinity; saturate at the last
                // finite edge.
                return lower_edge;
            }
            // `running >= rank > below`, so this bucket is non-empty.
            let in_bucket = (running - below) as f64;
            return lower_edge + (bound - lower_edge) * (rank - below as f64) / in_bucket;
        }
        lower_edge = if bound.is_finite() { bound } else { lower_edge };
        below = running;
    }
    lower_edge
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
    let mut guard = match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

/// Records a name/type registration conflict without leaving the registry
/// lock: bumps [`crate::names::METRIC_NAME_CONFLICTS_TOTAL`] directly in
/// `reg`. Telemetry is observation-only, so a conflicting registration must
/// degrade (detached handle + conflict count), never panic the pipeline.
fn record_conflict(reg: &mut BTreeMap<String, Metric>) {
    let conflict = reg
        .entry(crate::names::METRIC_NAME_CONFLICTS_TOTAL.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
    if let Metric::Counter(c) = conflict {
        c.inc();
    }
}

/// Returns the counter registered under `name`, creating it on first use.
///
/// If `name` is already registered as a different metric type, the conflict
/// is counted in `diststream_telemetry_name_conflicts_total` and a fresh
/// *detached* counter is returned: updates through it keep working but are
/// not exported, and the originally registered metric is untouched.
pub fn counter(name: &str) -> Arc<Counter> {
    with_registry(|reg| {
        let metric = reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => {
                record_conflict(reg);
                Arc::new(Counter::default())
            }
        }
    })
}

/// Returns the gauge registered under `name`, creating it on first use.
///
/// On a name/type conflict, counts it and returns a fresh detached gauge —
/// see [`counter`] for the degradation contract.
pub fn gauge(name: &str) -> Arc<Gauge> {
    with_registry(|reg| {
        let metric = reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => {
                record_conflict(reg);
                Arc::new(Gauge::default())
            }
        }
    })
}

/// Returns the histogram registered under `name`, creating it with the
/// given upper bucket bounds on first use (later calls ignore `bounds`).
///
/// On a name/type conflict, counts it and returns a fresh detached
/// histogram — see [`counter`] for the degradation contract.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    with_registry(|reg| {
        let metric = reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => {
                record_conflict(reg);
                Arc::new(Histogram::new(bounds))
            }
        }
    })
}

/// Clears the registry. Existing handles keep working but are no longer
/// exported; intended for test isolation and fresh bench sessions.
pub fn reset() {
    with_registry(|reg| reg.clear());
}

/// Splits `name{labels}` into its base name and the full keyed form.
fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(idx) => &name[..idx],
        None => name,
    }
}

fn fmt_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{value}")
    } else {
        // `{:?}` prints the shortest round-trippable form ("0.1", not
        // "0.100000"), matching conventional Prometheus `le` labels.
        format!("{value:?}")
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline must be backslash-escaped.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Re-renders a registered name's `key="value",…` label block with every
/// label value escaped per the exposition format. Registered names store
/// values raw (callers `format!` them in), so escaping happens once here
/// at render time. A value's closing quote is the one followed by `,` or
/// end-of-block, so values containing bare quotes still round-trip.
fn render_labels(labels: &str) -> String {
    let mut out = String::with_capacity(labels.len());
    let bytes = labels.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Copy `key="` verbatim.
        match labels[i..].find('"') {
            Some(open) => {
                out.push_str(&labels[i..i + open + 1]);
                i += open + 1;
            }
            None => {
                out.push_str(&labels[i..]);
                break;
            }
        }
        // The value ends at a quote followed by `,` or end-of-block.
        let mut end = i;
        while end < bytes.len() {
            if bytes[end] == b'"' && (end + 1 == bytes.len() || bytes[end + 1] == b',') {
                break;
            }
            end += 1;
        }
        out.push_str(&escape_label_value(&labels[i..end]));
        if end < bytes.len() {
            out.push('"');
        }
        i = end + 1;
    }
    out
}

/// Splits a registered name into its base and raw label block (without
/// braces); the label block is empty for unlabeled names.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(idx) => (&name[..idx], &name[idx + 1..name.len() - 1]),
        None => (name, ""),
    }
}

/// Renders a registered name for exposition, escaping label values.
fn render_name(name: &str) -> String {
    let (base, labels) = split_labels(name);
    if labels.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{}}}", render_labels(labels))
    }
}

/// Renders every registered metric in Prometheus text exposition format,
/// with `# HELP` (sourced from the [`crate::names`] catalog) and `# TYPE`
/// headers once per base name and label values escaped per the format.
pub fn expose() -> String {
    with_registry(|reg| {
        let mut out = String::new();
        let mut last_base: Option<String> = None;
        for (name, metric) in reg.iter() {
            let base = base_name(name);
            let type_line = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if last_base.as_deref() != Some(base) {
                if let Some(help) = crate::names::help(base) {
                    out.push_str(&format!("# HELP {base} {help}\n"));
                }
                out.push_str(&format!("# TYPE {base} {type_line}\n"));
                last_base = Some(base.to_string());
            }
            let rendered = render_name(name);
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{rendered} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{rendered} {}\n", fmt_value(g.get()))),
                Metric::Histogram(h) => {
                    let (base, raw_labels) = split_labels(name);
                    let labels = render_labels(raw_labels);
                    for (bound, cumulative) in h.cumulative() {
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            fmt_value(bound)
                        };
                        let sep = if labels.is_empty() { "" } else { "," };
                        out.push_str(&format!(
                            "{base}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
                        ));
                    }
                    let wrap = if labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{labels}}}")
                    };
                    out.push_str(&format!("{base}_sum{wrap} {}\n", fmt_value(h.sum())));
                    out.push_str(&format!("{base}_count{wrap} {}\n", h.count()));
                }
            }
        }
        out
    })
}

/// One row of the end-of-run human summary: `(name, kind, value, detail)`.
pub type SummaryRow = (String, &'static str, String, String);

/// Snapshot of every registered metric as human-readable summary rows,
/// sorted by name. Counters report their total, gauges last/max, and
/// histograms count plus mean and interpolated p50/p95/p99 (see
/// [`interpolate_quantile`]).
pub fn summary_rows() -> Vec<SummaryRow> {
    with_registry(|reg| {
        reg.iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => (
                    name.clone(),
                    "counter",
                    format!("{}", c.get()),
                    String::new(),
                ),
                Metric::Gauge(g) => (
                    name.clone(),
                    "gauge",
                    fmt_value(g.get()),
                    match g.max() {
                        Some(max) => format!("max={}", fmt_value(max)),
                        None => String::new(),
                    },
                ),
                Metric::Histogram(h) => (
                    name.clone(),
                    "histogram",
                    format!("n={}", h.count()),
                    format!(
                        "mean={} p50={} p95={} p99={}",
                        fmt_value(h.mean()),
                        fmt_value(h.quantile(0.50)),
                        fmt_value(h.quantile(0.95)),
                        fmt_value(h.quantile(0.99))
                    ),
                ),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_is_shared() {
        reset();
        let a = counter("test_events_total");
        let b = counter("test_events_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        reset();
    }

    #[test]
    fn name_type_conflict_degrades_instead_of_panicking() {
        let c = counter("conflict_probe_total");
        c.inc();
        // Same name, different type: must not panic. The handle is fresh
        // and detached; the original registration is untouched.
        let g = gauge("conflict_probe_total");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        assert_eq!(counter("conflict_probe_total").get(), 1);
        let conflicts = counter(crate::names::METRIC_NAME_CONFLICTS_TOTAL).get();
        assert!(conflicts >= 1, "conflict not counted: {conflicts}");
        // A conflicting histogram degrades the same way.
        let h = histogram("conflict_probe_total", &[1.0]);
        h.observe(0.5);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn gauge_tracks_max() {
        let g = Gauge::default();
        assert_eq!(g.max(), None);
        g.set(2.0);
        g.set(7.5);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
        assert_eq!(g.max(), Some(7.5));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new(&[1.0, 5.0]);
        h.observe(0.5);
        h.observe(3.0);
        h.observe(10.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 13.5).abs() < 1e-12);
        assert!((h.mean() - 4.5).abs() < 1e-12);
        let cumulative = h.cumulative();
        assert_eq!(cumulative[0], (1.0, 1));
        assert_eq!(cumulative[1], (5.0, 2));
        assert_eq!(cumulative[2].1, 3);
        assert!(cumulative[2].0.is_infinite());
    }

    #[test]
    fn expose_renders_prometheus_text() {
        reset();
        counter("expose_total{task=\"1\"}").add(3);
        gauge("expose_depth").set(2.0);
        histogram("expose_lat_secs", &[0.1]).observe(0.05);
        let text = expose();
        assert!(text.contains("# TYPE expose_total counter"));
        assert!(text.contains("expose_total{task=\"1\"} 3"));
        assert!(text.contains("expose_depth 2"));
        assert!(text.contains("expose_lat_secs_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("expose_lat_secs_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("expose_lat_secs_count 1"));
        reset();
    }

    #[test]
    fn expose_emits_help_from_the_names_catalog() {
        reset();
        counter(crate::names::METRIC_BATCHES_TOTAL).add(7);
        histogram(crate::names::METRIC_BATCH_TOTAL_SECS, &[1.0]).observe(0.5);
        // Uncataloged (test-local) names get TYPE but no HELP.
        gauge("expose_help_free").set(1.0);
        let text = expose();
        let help = crate::names::help(crate::names::METRIC_BATCHES_TOTAL).unwrap();
        assert!(text.contains(&format!(
            "# HELP {} {help}\n# TYPE {} counter",
            crate::names::METRIC_BATCHES_TOTAL,
            crate::names::METRIC_BATCHES_TOTAL
        )));
        assert!(text.contains(&format!(
            "# HELP {} ",
            crate::names::METRIC_BATCH_TOTAL_SECS
        )));
        assert!(!text.contains("# HELP expose_help_free"));
        reset();
    }

    #[test]
    fn expose_escapes_label_values() {
        reset();
        counter("expose_esc_total{path=\"a\\b\nc\"}").add(1);
        histogram("expose_esc_secs{src=\"x\ny\"}", &[1.0]).observe(0.5);
        let text = expose();
        assert!(
            text.contains("expose_esc_total{path=\"a\\\\b\\nc\"} 1"),
            "label value not escaped: {text}"
        );
        assert!(text.contains("expose_esc_secs_bucket{src=\"x\\ny\",le=\"1\"} 1"));
        assert!(text.contains("expose_esc_secs_sum{src=\"x\\ny\"} 0.5"));
        reset();
    }

    #[test]
    fn interpolation_matches_hand_computed_values() {
        // Buckets (le, cumulative): 2 obs in (0,1], 4 in (1,2], 2 in
        // (2,4], 2 beyond. Hand-computed on the uniform-within-bucket
        // assumption:
        //   p50: rank 5 lands in (1,2] holding ranks 3..=6
        //        → 1 + (5−2)/4 × (2−1)           = 1.75
        //   p80: rank 8 lands at the top of (2,4] → 4.0
        //   p95: rank 9.5 is in +Inf → clamps to the last finite bound 4.0
        let cumulative = vec![(1.0, 2), (2.0, 6), (4.0, 8), (f64::INFINITY, 10)];
        assert!((interpolate_quantile(&cumulative, 0.50) - 1.75).abs() < 1e-12);
        assert!((interpolate_quantile(&cumulative, 0.80) - 4.0).abs() < 1e-12);
        assert!((interpolate_quantile(&cumulative, 0.95) - 4.0).abs() < 1e-12);
        // First-bucket ranks interpolate up from zero: p10 → rank 1 of 2
        // in (0,1] → 0.5.
        assert!((interpolate_quantile(&cumulative, 0.10) - 0.5).abs() < 1e-12);
        assert_eq!(interpolate_quantile(&[], 0.5), 0.0);
        assert_eq!(
            interpolate_quantile(&[(1.0, 0), (f64::INFINITY, 0)], 0.5),
            0.0
        );
    }

    #[test]
    fn rank_on_boundary_resolves_to_the_lower_edge() {
        // Regression: all observations beyond the first bucket. q = 0 has
        // rank 0, which the empty leading (0,1] bucket "reaches" with a
        // cumulative count of 0 — the pre-fix code divided by the bucket's
        // zero width share and returned the bucket's *upper* bound (1.0),
        // overstating p0 by the full bucket width.
        let leading_empty = vec![(1.0, 0), (2.0, 5), (f64::INFINITY, 5)];
        assert_eq!(interpolate_quantile(&leading_empty, 0.0), 0.0);
        // Rank landing exactly on an interior bucket boundary that is also
        // the lower edge of an empty bucket: interpolation resolves inside
        // the populated (1,2] bucket to exactly 2.0 and never consults the
        // empty (2,4] bucket.
        let interior_empty = vec![(1.0, 1), (2.0, 4), (4.0, 4), (8.0, 8), (f64::INFINITY, 8)];
        assert_eq!(interpolate_quantile(&interior_empty, 0.5), 2.0);
        // q = 0 with a non-empty leading bucket is unchanged: still the
        // histogram's lower edge.
        let populated = vec![(1.0, 2), (f64::INFINITY, 2)];
        assert_eq!(interpolate_quantile(&populated, 0.0), 0.0);
    }

    #[test]
    fn histogram_quantile_and_summary_percentiles_agree() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 0.6, 1.2, 1.4, 1.6, 1.8, 2.5, 3.5, 5.0, 9.0] {
            h.observe(v);
        }
        assert!((h.quantile(0.50) - 1.75).abs() < 1e-12);
        assert!((h.quantile(0.95) - 4.0).abs() < 1e-12);

        reset();
        let registered = histogram("summary_quantiles_secs", &[1.0, 2.0, 4.0]);
        for v in [0.5, 0.6, 1.2, 1.4, 1.6, 1.8, 2.5, 3.5, 5.0, 9.0] {
            registered.observe(v);
        }
        let rows = summary_rows();
        let row = rows
            .iter()
            .find(|(name, ..)| name == "summary_quantiles_secs")
            .expect("histogram row");
        assert!(
            row.3.contains("p50=1.75") && row.3.contains("p95=4") && row.3.contains("p99=4"),
            "percentiles missing from summary detail: {}",
            row.3
        );
        reset();
    }

    #[test]
    fn add_bucketed_merges_pre_bucketed_observations() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        // 1 more in (0,1], 2 in (1,2], 3 in +Inf, summing to 10.5.
        h.add_bucketed(&[1, 2, 3], 10.5);
        assert_eq!(h.count(), 7);
        assert!((h.sum() - 11.0).abs() < 1e-12);
        assert_eq!(h.cumulative(), vec![(1.0, 2), (2.0, 4), (f64::INFINITY, 7)]);
        // Overlong count vectors saturate into +Inf instead of dropping.
        h.add_bucketed(&[0, 0, 1, 4], 8.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.cumulative().last().unwrap().1, 12);
        // Empty batches are a no-op.
        h.add_bucketed(&[0, 0, 0], 99.0);
        assert_eq!(h.count(), 12);
        assert!((h.sum() - 19.0).abs() < 1e-12);
    }

    #[test]
    fn summary_rows_cover_all_kinds() {
        reset();
        counter("summary_a_total").inc();
        gauge("summary_b").set(1.5);
        histogram("summary_c", &[1.0]).observe(0.5);
        let rows = summary_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, "counter");
        assert_eq!(rows[1].1, "gauge");
        assert_eq!(rows[2].1, "histogram");
        reset();
    }
}

//! Typed metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Metrics are identified by name; labels are encoded into the name in
//! Prometheus style (`straggler_culprit_total{task="3"}`). Handles are
//! `Arc`s over atomics, so hot paths register once, cache the handle, and
//! update it lock-free; the registry lock is only taken at registration
//! and exposition time.
//!
//! Floating-point gauges and histogram sums store `f64::to_bits` in an
//! `AtomicU64` — standard lock-free float storage.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::SeqCst);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

/// A last-write-wins floating-point gauge that also tracks its maximum.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge, updating the running maximum.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::SeqCst);
        // CAS loop keeps the max correct under concurrent setters.
        let mut current = self.max_bits.load(Ordering::SeqCst);
        while value > f64::from_bits(current) {
            match self.max_bits.compare_exchange(
                current,
                value.to_bits(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }

    /// Largest value ever set (`None` before the first `set`).
    pub fn max(&self) -> Option<f64> {
        let max = f64::from_bits(self.max_bits.load(Ordering::SeqCst));
        if max == f64::NEG_INFINITY {
            None
        } else {
            Some(max)
        }
    }
}

/// A histogram with caller-fixed upper bucket bounds plus an implicit
/// `+Inf` bucket, tracking count and sum like Prometheus.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is `+Inf`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::SeqCst);
        self.count.fetch_add(1, Ordering::SeqCst);
        // CAS loop for the float sum.
        let mut current = self.sum_bits.load(Ordering::SeqCst);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self
                .sum_bits
                .compare_exchange(current, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::SeqCst))
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() / count as f64
        }
    }

    /// Cumulative counts per bound, Prometheus `le` semantics; the final
    /// entry is the `+Inf` bucket (== total count).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut running = 0;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (i, bucket) in self.buckets.iter().enumerate() {
            running += bucket.load(Ordering::SeqCst);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, running));
        }
        out
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
    let mut guard = match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

/// Records a name/type registration conflict without leaving the registry
/// lock: bumps [`crate::names::METRIC_NAME_CONFLICTS_TOTAL`] directly in
/// `reg`. Telemetry is observation-only, so a conflicting registration must
/// degrade (detached handle + conflict count), never panic the pipeline.
fn record_conflict(reg: &mut BTreeMap<String, Metric>) {
    let conflict = reg
        .entry(crate::names::METRIC_NAME_CONFLICTS_TOTAL.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
    if let Metric::Counter(c) = conflict {
        c.inc();
    }
}

/// Returns the counter registered under `name`, creating it on first use.
///
/// If `name` is already registered as a different metric type, the conflict
/// is counted in `diststream_telemetry_name_conflicts_total` and a fresh
/// *detached* counter is returned: updates through it keep working but are
/// not exported, and the originally registered metric is untouched.
pub fn counter(name: &str) -> Arc<Counter> {
    with_registry(|reg| {
        let metric = reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => {
                record_conflict(reg);
                Arc::new(Counter::default())
            }
        }
    })
}

/// Returns the gauge registered under `name`, creating it on first use.
///
/// On a name/type conflict, counts it and returns a fresh detached gauge —
/// see [`counter`] for the degradation contract.
pub fn gauge(name: &str) -> Arc<Gauge> {
    with_registry(|reg| {
        let metric = reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => {
                record_conflict(reg);
                Arc::new(Gauge::default())
            }
        }
    })
}

/// Returns the histogram registered under `name`, creating it with the
/// given upper bucket bounds on first use (later calls ignore `bounds`).
///
/// On a name/type conflict, counts it and returns a fresh detached
/// histogram — see [`counter`] for the degradation contract.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    with_registry(|reg| {
        let metric = reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => {
                record_conflict(reg);
                Arc::new(Histogram::new(bounds))
            }
        }
    })
}

/// Clears the registry. Existing handles keep working but are no longer
/// exported; intended for test isolation and fresh bench sessions.
pub fn reset() {
    with_registry(|reg| reg.clear());
}

/// Splits `name{labels}` into its base name and the full keyed form.
fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(idx) => &name[..idx],
        None => name,
    }
}

fn fmt_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{value}")
    } else {
        // `{:?}` prints the shortest round-trippable form ("0.1", not
        // "0.100000"), matching conventional Prometheus `le` labels.
        format!("{value:?}")
    }
}

/// Renders every registered metric in Prometheus text exposition format.
pub fn expose() -> String {
    with_registry(|reg| {
        let mut out = String::new();
        let mut last_base: Option<String> = None;
        for (name, metric) in reg.iter() {
            let base = base_name(name);
            let type_line = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if last_base.as_deref() != Some(base) {
                out.push_str(&format!("# TYPE {base} {type_line}\n"));
                last_base = Some(base.to_string());
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", fmt_value(g.get()))),
                Metric::Histogram(h) => {
                    let (base, labels) = match name.find('{') {
                        Some(idx) => (&name[..idx], name[idx + 1..name.len() - 1].to_string()),
                        None => (name.as_str(), String::new()),
                    };
                    for (bound, cumulative) in h.cumulative() {
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            fmt_value(bound)
                        };
                        let sep = if labels.is_empty() { "" } else { "," };
                        out.push_str(&format!(
                            "{base}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
                        ));
                    }
                    let wrap = if labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{labels}}}")
                    };
                    out.push_str(&format!("{base}_sum{wrap} {}\n", fmt_value(h.sum())));
                    out.push_str(&format!("{base}_count{wrap} {}\n", h.count()));
                }
            }
        }
        out
    })
}

/// One row of the end-of-run human summary: `(name, kind, value, detail)`.
pub type SummaryRow = (String, &'static str, String, String);

/// Snapshot of every registered metric as human-readable summary rows,
/// sorted by name. Counters report their total, gauges last/max, and
/// histograms count/mean.
pub fn summary_rows() -> Vec<SummaryRow> {
    with_registry(|reg| {
        reg.iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => (
                    name.clone(),
                    "counter",
                    format!("{}", c.get()),
                    String::new(),
                ),
                Metric::Gauge(g) => (
                    name.clone(),
                    "gauge",
                    fmt_value(g.get()),
                    match g.max() {
                        Some(max) => format!("max={}", fmt_value(max)),
                        None => String::new(),
                    },
                ),
                Metric::Histogram(h) => (
                    name.clone(),
                    "histogram",
                    format!("n={}", h.count()),
                    format!("mean={}", fmt_value(h.mean())),
                ),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_is_shared() {
        reset();
        let a = counter("test_events_total");
        let b = counter("test_events_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        reset();
    }

    #[test]
    fn name_type_conflict_degrades_instead_of_panicking() {
        let c = counter("conflict_probe_total");
        c.inc();
        // Same name, different type: must not panic. The handle is fresh
        // and detached; the original registration is untouched.
        let g = gauge("conflict_probe_total");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        assert_eq!(counter("conflict_probe_total").get(), 1);
        let conflicts = counter(crate::names::METRIC_NAME_CONFLICTS_TOTAL).get();
        assert!(conflicts >= 1, "conflict not counted: {conflicts}");
        // A conflicting histogram degrades the same way.
        let h = histogram("conflict_probe_total", &[1.0]);
        h.observe(0.5);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn gauge_tracks_max() {
        let g = Gauge::default();
        assert_eq!(g.max(), None);
        g.set(2.0);
        g.set(7.5);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
        assert_eq!(g.max(), Some(7.5));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new(&[1.0, 5.0]);
        h.observe(0.5);
        h.observe(3.0);
        h.observe(10.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 13.5).abs() < 1e-12);
        assert!((h.mean() - 4.5).abs() < 1e-12);
        let cumulative = h.cumulative();
        assert_eq!(cumulative[0], (1.0, 1));
        assert_eq!(cumulative[1], (5.0, 2));
        assert_eq!(cumulative[2].1, 3);
        assert!(cumulative[2].0.is_infinite());
    }

    #[test]
    fn expose_renders_prometheus_text() {
        reset();
        counter("expose_total{task=\"1\"}").add(3);
        gauge("expose_depth").set(2.0);
        histogram("expose_lat_secs", &[0.1]).observe(0.05);
        let text = expose();
        assert!(text.contains("# TYPE expose_total counter"));
        assert!(text.contains("expose_total{task=\"1\"} 3"));
        assert!(text.contains("expose_depth 2"));
        assert!(text.contains("expose_lat_secs_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("expose_lat_secs_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("expose_lat_secs_count 1"));
        reset();
    }

    #[test]
    fn summary_rows_cover_all_kinds() {
        reset();
        counter("summary_a_total").inc();
        gauge("summary_b").set(1.5);
        histogram("summary_c", &[1.0]).observe(0.5);
        let rows = summary_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, "counter");
        assert_eq!(rows[1].1, "gauge");
        assert_eq!(rows[2].1, "histogram");
        reset();
    }
}

//! Chrome trace-event export: journal → the JSON array format that
//! `chrome://tracing` and Perfetto load directly.
//!
//! Span close events become `"X"` (complete) events — the close carries
//! both the duration and, by subtraction, the start timestamp. Point
//! events become `"i"` (instant) events with their numeric payload in
//! `args`. Timestamps are already microseconds, the format's native unit.

use std::fmt::Write as _;

use crate::parse::{EventKind, Journal};

/// Renders the journal as a Chrome trace-event JSON array.
pub fn export(journal: &Journal) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for event in &journal.events {
        let mut entry = String::new();
        match event.kind {
            EventKind::Close => {
                let ts = event.t_us.saturating_sub(event.dur_us);
                let _ = write!(
                    entry,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":0,\"tid\":{}",
                    escape(&event.name),
                    event.dur_us,
                    event.thread
                );
            }
            EventKind::Point => {
                let _ = write!(
                    entry,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":0,\"tid\":{}",
                    escape(&event.name),
                    event.t_us,
                    event.thread
                );
            }
            // Opens are redundant with the "X" entries built from closes.
            EventKind::Open => continue,
        }
        entry.push_str(",\"args\":{");
        let mut first_arg = true;
        let mut arg = |key: &str, value: String| {
            if !first_arg {
                entry.push(',');
            }
            first_arg = false;
            let _ = write!(entry, "\"{}\":{value}", escape(key));
        };
        if let Some(batch) = event.batch {
            arg("batch", batch.to_string());
        }
        if let Some(task) = event.task {
            arg("task", task.to_string());
        }
        for (key, value) in &event.fields {
            let rendered = if value.is_finite() {
                format!("{value:?}")
            } else {
                "null".to_string()
            };
            arg(key, rendered);
        }
        entry.push_str("}}");

        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&entry);
    }
    out.push_str("\n]\n");
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_journal;

    #[test]
    fn exports_complete_and_instant_events() {
        let contents = "{\"ev\":\"meta\",\"version\":1,\"clock\":\"monotonic-us\"}\n\
            {\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":0,\"t_us\":100,\"depth\":0,\"batch\":2}\n\
            {\"ev\":\"close\",\"span\":\"batch\",\"thread\":0,\"seq\":1,\"t_us\":400,\"depth\":0,\"dur_us\":300,\"batch\":2}\n\
            {\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":2,\"t_us\":401,\"batch\":2,\"total_secs\":0.5}";
        let journal = parse_journal(contents).expect("parses");
        let trace = export(&journal);
        // The "X" event starts at close − duration.
        assert!(
            trace.contains(
                "{\"name\":\"batch\",\"ph\":\"X\",\"ts\":100,\"dur\":300,\"pid\":0,\"tid\":0,\"args\":{\"batch\":2}}"
            ),
            "{trace}"
        );
        assert!(
            trace.contains(
                "{\"name\":\"batch_summary\",\"ph\":\"i\",\"ts\":401,\"s\":\"t\",\"pid\":0,\"tid\":0,\"args\":{\"batch\":2,\"total_secs\":0.5}}"
            ),
            "{trace}"
        );
        assert!(trace.starts_with('['));
        assert!(trace.ends_with("]\n"));
        // Opens are folded into the "X" entries.
        assert_eq!(trace.matches("\"name\":\"batch\"").count(), 1);
    }
}

//! Journal parsing: JSONL text → typed event stream.
//!
//! The telemetry journal is JSONL with a leading `meta` line; every other
//! line is a flat object with scalar values — an `open`/`close` span event,
//! a named `point`, or a trailing `drops` line recording lost events (see
//! `crates/telemetry/src/journal.rs`). The parser here handles exactly that
//! subset (string / number / null values, no nesting), so the crate needs
//! no JSON dependency.
//!
//! Unlike `xtask check-trace` — which validates structure and reports every
//! defect — this parser is a consumer: it requires the meta line and a
//! supported version, errors on lines it cannot parse, and skips event
//! kinds it does not know (forward compatibility with future journal
//! additions).

use std::fmt;

/// Journal schema version this crate understands. Mirrors
/// `diststream_telemetry::JOURNAL_VERSION` (duplicated deliberately — the
/// crate reads journal *files*, which outlive any in-process constant).
pub const SUPPORTED_VERSION: f64 = 1.0;

/// What a parsed journal event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was opened.
    Open,
    /// A span was closed; `dur_us` holds its duration.
    Close,
    /// A named instantaneous observation with numeric fields.
    Point,
}

/// One parsed journal event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Span or point name.
    pub name: String,
    /// Per-thread ordinal assigned at the thread's first event.
    pub thread: u64,
    /// Per-thread monotonically increasing sequence number.
    pub seq: u64,
    /// Event timestamp, microseconds since the telemetry clock anchor.
    pub t_us: u64,
    /// Span nesting depth at open time. 0 for points.
    pub depth: u16,
    /// Span duration in microseconds (close events only, 0 otherwise).
    pub dur_us: u64,
    /// Mini-batch index, when the emitter was batch-scoped.
    pub batch: Option<u64>,
    /// Task index, when the emitter was task-scoped.
    pub task: Option<u64>,
    /// Extra numeric payload (point events).
    pub fields: Vec<(String, f64)>,
}

impl TraceEvent {
    /// Looks up a numeric payload field by name.
    pub fn field(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// A parsed journal: the event stream plus file-level metadata.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Journal {
    /// Schema version from the meta line.
    pub version: f64,
    /// Events in file order.
    pub events: Vec<TraceEvent>,
    /// Lost-event count from the trailing `drops` line (0 when absent —
    /// the journal is complete).
    pub drops: u64,
}

impl Journal {
    /// Iterates the journal's point events with the given name.
    pub fn points<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind == EventKind::Point && e.name == name)
    }
}

/// A journal parse failure, with the 1-based line it occurred on (0 for
/// file-level problems).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based journal line, 0 for file-level errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a journal file.
///
/// # Errors
///
/// Returns the I/O error message or the first malformed line.
pub fn parse_journal_file(path: &std::path::Path) -> Result<Journal, ParseError> {
    let contents = std::fs::read_to_string(path)
        .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
    parse_journal(&contents)
}

/// Parses journal contents.
///
/// # Errors
///
/// Fails on a missing/unsupported meta line or any line that is not a flat
/// scalar object. Unknown *event kinds* are skipped, unknown *keys* are
/// kept as fields — both leave room for journal additions.
pub fn parse_journal(contents: &str) -> Result<Journal, ParseError> {
    let mut journal = Journal::default();
    let mut saw_meta = false;

    for (idx, line) in contents.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_flat_object(line).map_err(|e| err(lineno, e))?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ev = get("ev")
            .and_then(Value::as_str)
            .ok_or_else(|| err(lineno, "missing string field `ev`"))?;

        if !saw_meta {
            if ev != "meta" {
                return Err(err(
                    lineno,
                    format!("journal must start with a meta line, found `{ev}`"),
                ));
            }
            let version = get("version")
                .and_then(Value::as_num)
                .ok_or_else(|| err(lineno, "meta line lacks `version`"))?;
            if version != SUPPORTED_VERSION {
                return Err(err(
                    lineno,
                    format!("unsupported journal version {version} (expected {SUPPORTED_VERSION})"),
                ));
            }
            journal.version = version;
            saw_meta = true;
            continue;
        }

        let kind = match ev {
            "open" => EventKind::Open,
            "close" => EventKind::Close,
            "point" => EventKind::Point,
            "drops" => {
                journal.drops = get("count").and_then(Value::as_num).unwrap_or(0.0) as u64;
                continue;
            }
            // Skip kinds this version does not know.
            _ => continue,
        };
        let name_key = if kind == EventKind::Point {
            "name"
        } else {
            "span"
        };
        let name = get(name_key)
            .and_then(Value::as_str)
            .ok_or_else(|| err(lineno, format!("`{ev}` event lacks `{name_key}`")))?
            .to_string();
        let num = |key: &str| -> Result<u64, ParseError> {
            get(key)
                .and_then(Value::as_num)
                .map(|v| v as u64)
                .ok_or_else(|| err(lineno, format!("`{ev}` event lacks numeric `{key}`")))
        };
        let mut event = TraceEvent {
            kind,
            name,
            thread: num("thread")?,
            seq: num("seq")?,
            t_us: num("t_us")?,
            depth: 0,
            dur_us: 0,
            batch: get("batch").and_then(Value::as_num).map(|v| v as u64),
            task: get("task").and_then(Value::as_num).map(|v| v as u64),
            fields: Vec::new(),
        };
        match kind {
            EventKind::Open => event.depth = num("depth")? as u16,
            EventKind::Close => {
                event.depth = num("depth")? as u16;
                event.dur_us = num("dur_us")?;
            }
            EventKind::Point => {
                const RESERVED: &[&str] = &[
                    "ev", "span", "name", "thread", "seq", "depth", "t_us", "dur_us", "batch",
                    "task",
                ];
                for (key, value) in &fields {
                    if !RESERVED.contains(&key.as_str()) {
                        // Non-finite payloads are journaled as null; keep
                        // the key with NaN so consumers can tell "absent"
                        // from "unrepresentable".
                        let v = value.as_num().unwrap_or(f64::NAN);
                        event.fields.push((key.clone(), v));
                    }
                }
            }
        }
        journal.events.push(event);
    }

    if !saw_meta {
        return Err(err(0, "journal is empty (no meta line)"));
    }
    Ok(journal)
}

/// A minimal JSON scalar — everything the journal encoder can emit.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Null,
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"key":value,...}`) with scalar values.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let src = line.trim();
    let mut chars = src.char_indices().peekable();
    let mut fields = Vec::new();

    let expect =
        |chars: &mut std::iter::Peekable<std::str::CharIndices>, want: char| match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((at, c)) => Err(format!("expected `{want}` at byte {at}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of line")),
        };

    expect(&mut chars, '{')?;
    if chars.peek().map(|(_, c)| *c) == Some('}') {
        return Ok(fields);
    }
    loop {
        let key = parse_string(src, &mut chars)?;
        expect(&mut chars, ':')?;
        let value = parse_value(src, &mut chars)?;
        fields.push((key, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            Some((at, c)) => return Err(format!("expected `,` or `}}` at byte {at}, found `{c}`")),
            None => return Err("unterminated object".to_string()),
        }
    }
    if chars.next().is_some() {
        return Err("trailing characters after object".to_string());
    }
    Ok(fields)
}

fn parse_string(
    src: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices>,
) -> Result<String, String> {
    match chars.next() {
        Some((_, '"')) => {}
        Some((at, c)) => return Err(format!("expected `\"` at byte {at}, found `{c}`")),
        None => return Err("expected string, found end of line".to_string()),
    }
    let mut out = String::new();
    while let Some((at, c)) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let digit = chars
                            .next()
                            .and_then(|(_, d)| d.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + digit;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                _ => return Err(format!("bad escape in string at byte {at} of `{src}`")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_value(
    src: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices>,
) -> Result<Value, String> {
    match chars.peek() {
        Some((_, '"')) => parse_string(src, chars).map(Value::Str),
        Some((_, 'n')) => {
            for want in "null".chars() {
                match chars.next() {
                    Some((_, c)) if c == want => {}
                    _ => return Err("bad literal (expected `null`)".to_string()),
                }
            }
            Ok(Value::Null)
        }
        Some((start, c)) if *c == '-' || c.is_ascii_digit() => {
            let start = *start;
            let mut end = start;
            while let Some((at, c)) = chars.peek() {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    end = at + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            src[start..end]
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number `{}`", &src[start..end]))
        }
        Some((at, c)) => Err(format!(
            "unsupported value starting with `{c}` at byte {at}"
        )),
        None => Err("expected value, found end of line".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) const META: &str = "{\"ev\":\"meta\",\"version\":1,\"clock\":\"monotonic-us\"}";

    fn journal(lines: &[&str]) -> String {
        let mut out = String::from(META);
        for line in lines {
            out.push('\n');
            out.push_str(line);
        }
        out
    }

    #[test]
    fn parses_spans_points_and_drops() {
        let contents = journal(&[
            "{\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":0,\"t_us\":10,\"depth\":0,\"batch\":0}",
            "{\"ev\":\"close\",\"span\":\"batch\",\"thread\":0,\"seq\":1,\"t_us\":30,\"depth\":0,\"dur_us\":20,\"batch\":0}",
            "{\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":2,\"t_us\":31,\"batch\":0,\"records\":10.0,\"total_secs\":0.5}",
            "{\"ev\":\"drops\",\"count\":3}",
        ]);
        let parsed = parse_journal(&contents).expect("parses");
        assert_eq!(parsed.version, 1.0);
        assert_eq!(parsed.events.len(), 3);
        assert_eq!(parsed.drops, 3);
        assert_eq!(parsed.events[0].kind, EventKind::Open);
        assert_eq!(parsed.events[1].dur_us, 20);
        let point = &parsed.events[2];
        assert_eq!(point.kind, EventKind::Point);
        assert_eq!(point.batch, Some(0));
        assert_eq!(point.field("records"), Some(10.0));
        assert_eq!(point.field("total_secs"), Some(0.5));
        assert_eq!(point.field("absent"), None);
        assert_eq!(parsed.points("batch_summary").count(), 1);
    }

    #[test]
    fn skips_unknown_event_kinds() {
        let contents = journal(&[
            "{\"ev\":\"future_thing\",\"payload\":1}",
            "{\"ev\":\"point\",\"name\":\"p\",\"thread\":0,\"seq\":0,\"t_us\":1}",
        ]);
        let parsed = parse_journal(&contents).expect("parses");
        assert_eq!(parsed.events.len(), 1);
    }

    #[test]
    fn null_point_fields_become_nan() {
        let contents = journal(&[
            "{\"ev\":\"point\",\"name\":\"p\",\"thread\":0,\"seq\":0,\"t_us\":1,\"bad\":null}",
        ]);
        let parsed = parse_journal(&contents).expect("parses");
        assert!(parsed.events[0].field("bad").unwrap().is_nan());
    }

    #[test]
    fn rejects_missing_meta_and_bad_version() {
        let no_meta = "{\"ev\":\"point\",\"name\":\"p\",\"thread\":0,\"seq\":0,\"t_us\":1}";
        let e = parse_journal(no_meta).expect_err("no meta");
        assert!(e.message.contains("meta"), "{e}");

        let bad_version = "{\"ev\":\"meta\",\"version\":99}";
        let e = parse_journal(bad_version).expect_err("bad version");
        assert!(e.message.contains("unsupported"), "{e}");

        let e = parse_journal("").expect_err("empty");
        assert!(e.message.contains("empty"), "{e}");
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let contents = journal(&["not json"]);
        let e = parse_journal(&contents).expect_err("garbage line");
        assert_eq!(e.line, 2);
        assert!(e.to_string().starts_with("line 2:"), "{e}");
    }
}

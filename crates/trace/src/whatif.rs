//! What-if scaling prediction: replay recorded per-task durations through
//! a simulated schedule at a different parallelism degree.
//!
//! The model follows the Spark-Streaming simulation literature (see
//! PAPERS.md, "Modeling and Simulation of Spark Streaming"): a batch's
//! parallel step is a list-scheduling problem over `p` executor slots, the
//! driver-side global update and the charged overhead are serial, and the
//! prediction at `p′` replays the *recorded* task durations through an LPT
//! (longest-processing-time-first) greedy schedule over `p′` slots.
//!
//! Two corrections keep the replay honest:
//!
//! - **Residual overhead.** The recorded step wall time exceeds the LPT
//!   makespan of its own tasks at the recorded parallelism (barrier cost,
//!   per-slot setup). That residual is kept as-is in the prediction — no
//!   re-schedule can shrink it.
//! - **Divisible-work fallback.** Task count is fixed at record time by
//!   the recorded parallelism, so when `p′` exceeds the task count an LPT
//!   replay cannot use the extra slots at all. Record-based steps *would*
//!   split finer at a real `p′`, so the model assumes divisible work
//!   there: `cpu_sum / p′`, floored by the largest single task.
//!
//! Known error sources (documented in DESIGN.md §12): the fallback
//! over-estimates splittability for model-based steps with few keys, the
//! residual is assumed parallelism-independent, and overhead charged
//! from byte volumes does not change with `p′` even though broadcast
//! volume scales with it. Amdahl's law still bounds the result: the
//! reported serial fraction caps any achievable speedup at
//! `1 / serial_fraction`.

use crate::analysis::{BatchProfile, RunProfile};

/// Prediction for one hypothetical parallelism degree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhatIf {
    /// The hypothetical degree `p′`.
    pub parallelism: usize,
    /// Predicted run wall seconds at `p′`.
    pub predicted_total_secs: f64,
    /// Recorded wall seconds / predicted wall seconds.
    pub speedup: f64,
    /// Fraction of the *recorded* run that is serial (global update,
    /// overhead, and schedule residuals) — Amdahl's ceiling on any
    /// speedup is `1 / serial_fraction`.
    pub serial_fraction: f64,
}

/// LPT (longest-processing-time-first) greedy makespan of `tasks` over
/// `slots` executor slots. Deterministic: equal durations tie-break by
/// their position after a stable sort, and the earliest-finishing slot
/// wins ties by index.
pub fn lpt_makespan(tasks: &[f64], slots: usize) -> f64 {
    if tasks.is_empty() || slots == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = tasks.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut loads = vec![0.0f64; slots.min(sorted.len())];
    for task in sorted {
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("slots is non-empty");
        loads[idx] += task;
    }
    loads.iter().copied().fold(0.0, f64::max)
}

/// Predicted wall seconds of one parallel step at `p_prime` slots:
/// rescheduled task makespan plus the recorded schedule residual.
fn step_prediction(tasks: &[f64], recorded_wall: f64, p_run: usize, p_prime: usize) -> f64 {
    if tasks.is_empty() {
        // No task data (old journal or empty step): the recorded wall is
        // all we know; treat it as unscalable.
        return recorded_wall;
    }
    let residual = (recorded_wall - lpt_makespan(tasks, p_run.max(1))).max(0.0);
    let makespan = if tasks.len() >= p_prime {
        lpt_makespan(tasks, p_prime)
    } else {
        // More slots than recorded tasks: assume divisible work — the real
        // system would split the records finer at p′ — giving the ideal
        // cpu_sum / p′.
        tasks.iter().sum::<f64>() / p_prime as f64
    };
    makespan + residual
}

/// Predicted wall seconds of one batch at `p_prime`.
pub fn predict_batch(batch: &BatchProfile, p_prime: usize) -> f64 {
    let p_run = if batch.parallelism > 0 {
        batch.parallelism
    } else {
        // Journal predates the parallelism field: fall back to the task
        // count, which the schedulers align to the slot count.
        batch.step_tasks[0].len().max(1)
    };
    let assignment = step_prediction(&batch.step_tasks[0], batch.assignment_secs, p_run, p_prime);
    let local = step_prediction(&batch.step_tasks[1], batch.local_secs, p_run, p_prime);
    let parallel = assignment + local;
    if batch.async_overlap {
        parallel.max(batch.global_secs) + batch.overhead_secs
    } else {
        parallel + batch.global_secs + batch.overhead_secs
    }
}

/// The recorded run's serial seconds: global update + overhead + schedule
/// residuals — the portion no added parallelism can shrink.
fn serial_secs(batch: &BatchProfile) -> f64 {
    let p_run = if batch.parallelism > 0 {
        batch.parallelism
    } else {
        batch.step_tasks[0].len().max(1)
    };
    let residual = |tasks: &[f64], wall: f64| {
        if tasks.is_empty() {
            wall
        } else {
            (wall - lpt_makespan(tasks, p_run)).max(0.0)
        }
    };
    let serial_global = if batch.async_overlap {
        // Overlapped: the global update only costs wall time when it is the
        // critical arm.
        (batch.global_secs - batch.assignment_secs - batch.local_secs).max(0.0)
    } else {
        batch.global_secs
    };
    serial_global
        + batch.overhead_secs
        + residual(&batch.step_tasks[0], batch.assignment_secs)
        + residual(&batch.step_tasks[1], batch.local_secs)
}

/// Predicts the run at each requested parallelism degree.
pub fn predict(run: &RunProfile, parallelisms: &[usize]) -> Vec<WhatIf> {
    let recorded = run.total_secs();
    let serial: f64 = run.batches.iter().map(serial_secs).sum();
    let serial_fraction = if recorded > 0.0 {
        (serial / recorded).clamp(0.0, 1.0)
    } else {
        0.0
    };
    parallelisms
        .iter()
        .map(|&p| {
            let predicted: f64 = run.batches.iter().map(|b| predict_batch(b, p.max(1))).sum();
            WhatIf {
                parallelism: p,
                predicted_total_secs: predicted,
                speedup: if predicted > 0.0 {
                    recorded / predicted
                } else {
                    0.0
                },
                serial_fraction,
            }
        })
        .collect()
}

/// Renders predictions for terminal output.
pub fn render(predictions: &[WhatIf], recorded_secs: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>14} {:>9} {:>15}",
        "p", "predicted secs", "speedup", "amdahl ceiling"
    );
    for p in predictions {
        let ceiling = if p.serial_fraction > 0.0 {
            format!("{:.2}x", 1.0 / p.serial_fraction)
        } else {
            "inf".to_string()
        };
        let _ = writeln!(
            out,
            "{:<6} {:>14.6} {:>8.2}x {:>15}",
            p.parallelism, p.predicted_total_secs, p.speedup, ceiling
        );
    }
    if let Some(first) = predictions.first() {
        let _ = writeln!(
            out,
            "recorded: {recorded_secs:.6}s, serial fraction {:.1}%",
            100.0 * first.serial_fraction
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn batch(
        tasks0: Vec<f64>,
        wall0: f64,
        tasks1: Vec<f64>,
        wall1: f64,
        global: f64,
        overhead: f64,
        p_run: usize,
        overlap: bool,
    ) -> BatchProfile {
        let parallel = wall0 + wall1;
        let total = if overlap {
            parallel.max(global) + overhead
        } else {
            parallel + global + overhead
        };
        BatchProfile {
            batch: 0,
            records: 100.0,
            assignment_secs: wall0,
            local_secs: wall1,
            global_secs: global,
            overhead_secs: overhead,
            total_secs: total,
            async_overlap: overlap,
            parallelism: p_run,
            stragglers: 0.0,
            step_tasks: [tasks0, tasks1],
            latency: None,
        }
    }

    #[test]
    fn lpt_makespan_matches_hand_schedules() {
        // 4 tasks over 2 slots: LPT packs {3, 1} and {2, 1.5} → 4.0.
        assert_eq!(lpt_makespan(&[1.0, 3.0, 2.0, 1.5], 2), 4.0);
        // One slot: serial sum.
        assert_eq!(lpt_makespan(&[1.0, 2.0, 3.0], 1), 6.0);
        // More slots than tasks: longest task.
        assert_eq!(lpt_makespan(&[1.0, 3.0], 8), 3.0);
        // Edge cases.
        assert_eq!(lpt_makespan(&[], 4), 0.0);
        assert_eq!(lpt_makespan(&[1.0], 0), 0.0);
        // Permutation invariance (determinism across journal orderings).
        assert_eq!(
            lpt_makespan(&[2.0, 1.0, 2.0, 1.0], 2),
            lpt_makespan(&[1.0, 2.0, 1.0, 2.0], 2)
        );
    }

    #[test]
    fn prediction_scales_tasks_and_keeps_serial_parts() {
        // p=1 run: 4 assignment tasks of 1s each (wall 4s, no residual),
        // no local tasks, 0.5s global, 0.5s overhead → recorded 5s.
        let b = batch(vec![1.0; 4], 4.0, vec![], 0.0, 0.5, 0.5, 1, false);
        let run = RunProfile {
            batches: vec![b],
            ingest_secs: 0.0,
            drops: 0,
        };
        let predictions = predict(&run, &[2, 4, 8]);
        // p=2: makespan 2 + global 0.5 + overhead 0.5 = 3.
        assert!((predictions[0].predicted_total_secs - 3.0).abs() < 1e-12);
        assert!((predictions[0].speedup - 5.0 / 3.0).abs() < 1e-12);
        // p=4: makespan 1 → 2.
        assert!((predictions[1].predicted_total_secs - 2.0).abs() < 1e-12);
        // p=8 > task count: divisible fallback 4/8 = 0.5 → 1.5.
        assert!((predictions[2].predicted_total_secs - 1.5).abs() < 1e-12);
        // Serial fraction: (0.5 + 0.5) / 5 = 20% → Amdahl ceiling 5x.
        assert!((predictions[0].serial_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn residual_overhead_survives_rescheduling() {
        // Recorded at p=2: tasks {1, 1}, LPT makespan 1, but wall 1.5 —
        // 0.5s of barrier residual that must persist at any p′.
        let b = batch(vec![1.0, 1.0], 1.5, vec![], 0.0, 0.0, 0.0, 2, false);
        let run = RunProfile {
            batches: vec![b],
            ingest_secs: 0.0,
            drops: 0,
        };
        let predictions = predict(&run, &[2]);
        // Re-predicting the recorded degree reproduces the recorded wall.
        assert!((predictions[0].predicted_total_secs - 1.5).abs() < 1e-12);
        assert!((predictions[0].speedup - 1.0).abs() < 1e-12);
        // The residual is serial.
        assert!((predictions[0].serial_fraction - 0.5 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn async_prediction_keeps_the_overlap_max() {
        // Parallel arm 2s (2 tasks × 1s at p=1), global 3s: recorded total
        // max(2, 3) + 0 = 3. At p=2 the parallel arm shrinks to 1s but the
        // global update still dominates: predicted stays 3.
        let b = batch(vec![1.0, 1.0], 2.0, vec![], 0.0, 3.0, 0.0, 1, true);
        let run = RunProfile {
            batches: vec![b],
            ingest_secs: 0.0,
            drops: 0,
        };
        let predictions = predict(&run, &[2]);
        assert!((predictions[0].predicted_total_secs - 3.0).abs() < 1e-12);
        assert!((predictions[0].speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn old_journals_without_task_points_predict_no_scaling() {
        let b = batch(vec![], 4.0, vec![], 0.0, 0.5, 0.5, 0, false);
        let run = RunProfile {
            batches: vec![b],
            ingest_secs: 0.0,
            drops: 0,
        };
        let predictions = predict(&run, &[8]);
        // Nothing to reschedule: prediction equals the recorded wall.
        assert!((predictions[0].predicted_total_secs - 5.0).abs() < 1e-12);
        assert!((predictions[0].serial_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_reports_speedup_and_ceiling() {
        let predictions = vec![WhatIf {
            parallelism: 4,
            predicted_total_secs: 2.0,
            speedup: 2.5,
            serial_fraction: 0.2,
        }];
        let out = render(&predictions, 5.0);
        assert!(out.contains("2.50x"), "{out}");
        assert!(out.contains("5.00x"), "{out}");
        assert!(out.contains("serial fraction 20.0%"), "{out}");
    }
}

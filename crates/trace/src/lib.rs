//! Trace analytics over DistStream telemetry journals.
//!
//! The telemetry crate *records* JSONL journals; this crate *consumes*
//! them. It turns a journal into a per-batch profile and answers the
//! questions an operator actually asks of a trace:
//!
//! - **Where did the time go?** [`analyze`] extracts each batch's
//!   critical path — the chain of phases that bounds wall time, which
//!   differs between the synchronous and overlapped pipelines — and
//!   aggregates it into a [`BlameTable`] naming the dominant phase.
//! - **What changed?** [`diff_blame`] compares two runs phase by phase
//!   and [`attribute_regression`] names the phase with the largest
//!   critical-path growth, so a >15% throughput regression comes with an
//!   attribution instead of a shrug.
//! - **Would more workers help?** [`predict`] replays the recorded
//!   per-task durations through a simulated LPT schedule at hypothetical
//!   parallelism levels, reporting predicted speedup and the serial
//!   fraction (Amdahl ceiling) that caps it.
//! - **Can I look at it?** [`chrome::export`] renders the journal in the
//!   Chrome trace-event format for `chrome://tracing` / Perfetto.
//!
//! Like the telemetry crate it mirrors, this crate deliberately has no
//! dependencies: it is consumed by `xtask` (which must stay fast to
//! build) and by the bench harness.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod chrome;
pub mod diff;
pub mod parse;
pub mod whatif;

pub use analysis::{
    analyze, span_multiset, BatchProfile, BlameRow, BlameTable, LatencyDigest, Phase, RunProfile,
    Segment,
};
pub use diff::{attribute_regression, diff_blame, PhaseDelta};
pub use parse::{parse_journal, parse_journal_file, EventKind, Journal, ParseError, TraceEvent};
pub use whatif::{lpt_makespan, predict, WhatIf};

//! Per-batch span-DAG construction, critical-path extraction, and the
//! run-level blame table.
//!
//! Every mini-batch's `batch_summary` point carries the four critical-path
//! components the executor measured (`assignment_secs`, `local_secs`,
//! `global_secs`, `overhead_secs`) plus the protocol flag. The batch's
//! dependency DAG is fixed by the protocol:
//!
//! ```text
//! sync:   ingest → assignment → local_update → global_update  (chain)
//! async:  ingest → assignment → local_update ─┐
//!                   global_update(B−1)       ─┴→ barrier      (diamond)
//! ```
//!
//! so the critical path is the chain of all four phases under the
//! synchronous protocol, and the *longer arm* of the diamond (parallel
//! steps vs. the overlapped global update) plus overhead under the
//! asynchronous one. Ingest never appears on a batch's critical path —
//! the batcher drains the source between batch spans (or a prefetch worker
//! hides it entirely) — so it is reported as a wall-side row computed from
//! the journal's span layout, not from `batch_summary`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::parse::{EventKind, Journal};

/// Relative reconciliation tolerance: each batch's critical-path segments
/// must reproduce its recorded `total_secs` within this fraction (with a
/// small absolute floor for near-empty batches). Matches the `xtask
/// check-trace` gate.
pub const RECONCILE_REL_TOL: f64 = 0.05;

/// A critical-path phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Source drain / reorder ahead of the batch (wall-side only).
    Ingest,
    /// Step 1: record-based parallel assignment.
    Assignment,
    /// Step 2: model-based parallel local update.
    LocalUpdate,
    /// Step 3: driver-side global update.
    GlobalUpdate,
    /// Scheduling, broadcast, shuffle, and collect overhead.
    Overhead,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Ingest,
        Phase::Assignment,
        Phase::LocalUpdate,
        Phase::GlobalUpdate,
        Phase::Overhead,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Ingest => "ingest",
            Phase::Assignment => "assignment",
            Phase::LocalUpdate => "local_update",
            Phase::GlobalUpdate => "global_update",
            Phase::Overhead => "overhead",
        }
    }
}

/// One critical-path segment of a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Which phase the time is charged to.
    pub phase: Phase,
    /// Seconds on the critical path.
    pub secs: f64,
}

/// Per-batch event-time latency percentiles, from the `record_latency`
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyDigest {
    /// Records covered.
    pub records: f64,
    /// Mean latency, seconds.
    pub mean_secs: f64,
    /// Median latency, seconds.
    pub p50_secs: f64,
    /// 95th percentile latency, seconds.
    pub p95_secs: f64,
    /// 99th percentile latency, seconds.
    pub p99_secs: f64,
}

/// Everything the journal recorded about one mini-batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchProfile {
    /// Mini-batch index.
    pub batch: u64,
    /// Records in the batch.
    pub records: f64,
    /// Step 1 barrier-to-barrier seconds.
    pub assignment_secs: f64,
    /// Step 2 barrier-to-barrier seconds.
    pub local_secs: f64,
    /// Driver-side global update seconds (the *applied* update under the
    /// async protocol — one batch behind the records).
    pub global_secs: f64,
    /// Charged scheduling/network overhead seconds.
    pub overhead_secs: f64,
    /// Recorded batch wall time.
    pub total_secs: f64,
    /// `true` under the asynchronous update protocol.
    pub async_overlap: bool,
    /// Executor slots the batch ran with (0 when the journal predates the
    /// field).
    pub parallelism: usize,
    /// Straggler tasks across both parallel steps.
    pub stragglers: f64,
    /// Per-task effective durations: `[0]` = assignment, `[1]` = local
    /// update. Empty when `task_duration` points were not journaled.
    pub step_tasks: [Vec<f64>; 2],
    /// Event-time latency percentiles, when journaled.
    pub latency: Option<LatencyDigest>,
}

impl BatchProfile {
    /// The batch's critical path, in execution order.
    ///
    /// Sync protocol: all four phases chain. Async protocol: the parallel
    /// steps race the overlapped global update; the longer arm is on the
    /// path (ties go to the parallel arm, matching
    /// `BatchMetrics::total_secs`), overhead always follows.
    pub fn critical_path(&self) -> Vec<Segment> {
        let seg = |phase, secs| Segment { phase, secs };
        if !self.async_overlap {
            return vec![
                seg(Phase::Assignment, self.assignment_secs),
                seg(Phase::LocalUpdate, self.local_secs),
                seg(Phase::GlobalUpdate, self.global_secs),
                seg(Phase::Overhead, self.overhead_secs),
            ];
        }
        let parallel = self.assignment_secs + self.local_secs;
        if parallel >= self.global_secs {
            vec![
                seg(Phase::Assignment, self.assignment_secs),
                seg(Phase::LocalUpdate, self.local_secs),
                seg(Phase::Overhead, self.overhead_secs),
            ]
        } else {
            vec![
                seg(Phase::GlobalUpdate, self.global_secs),
                seg(Phase::Overhead, self.overhead_secs),
            ]
        }
    }

    /// Checks that the critical-path segments reproduce the recorded wall
    /// time within [`RECONCILE_REL_TOL`]. Returns the (path sum, recorded
    /// total) pair on failure.
    pub fn reconcile(&self) -> Result<(), (f64, f64)> {
        let path: f64 = self.critical_path().iter().map(|s| s.secs).sum();
        let tolerance = (self.total_secs.abs() * RECONCILE_REL_TOL).max(1e-6);
        if (path - self.total_secs).abs() > tolerance {
            Err((path, self.total_secs))
        } else {
            Ok(())
        }
    }
}

/// A whole run's profile: every batch plus journal-level context.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunProfile {
    /// Batches in journal order (a journal holding several back-to-back
    /// runs repeats batch indices; see [`analyze`]).
    pub batches: Vec<BatchProfile>,
    /// Wall-side ingest seconds: prefetch span time plus driver-thread gaps
    /// between consecutive batch spans (source drain in the unprefetched
    /// pipeline). Not part of any batch's critical path.
    pub ingest_secs: f64,
    /// Events the journal lost (from the `drops` trailer). A non-zero
    /// value means every number here is a lower bound.
    pub drops: u64,
}

impl RunProfile {
    /// Sum of recorded batch wall times.
    pub fn total_secs(&self) -> f64 {
        self.batches.iter().map(|b| b.total_secs).sum()
    }

    /// Builds the run-level blame table from every batch's critical path.
    pub fn blame(&self) -> BlameTable {
        let mut rows: Vec<BlameRow> = Phase::ALL
            .iter()
            .map(|&phase| BlameRow {
                phase,
                secs: 0.0,
                batches_on_path: 0,
            })
            .collect();
        for batch in &self.batches {
            for segment in batch.critical_path() {
                let row = rows
                    .iter_mut()
                    .find(|r| r.phase == segment.phase)
                    .expect("Phase::ALL covers every segment phase");
                row.secs += segment.secs;
                row.batches_on_path += 1;
            }
        }
        if let Some(row) = rows.iter_mut().find(|r| r.phase == Phase::Ingest) {
            row.secs = self.ingest_secs;
        }
        BlameTable {
            rows,
            critical_secs: self.total_secs(),
            batches: self.batches.len(),
        }
    }
}

/// One blame-table row: a phase's aggregate critical-path time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlameRow {
    /// The phase.
    pub phase: Phase,
    /// Total seconds this phase spent on batch critical paths (wall-side
    /// seconds for [`Phase::Ingest`]).
    pub secs: f64,
    /// Batches whose critical path included this phase.
    pub batches_on_path: usize,
}

/// The run-level blame table: where the wall time went.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameTable {
    /// Rows in pipeline order ([`Phase::ALL`]).
    pub rows: Vec<BlameRow>,
    /// Sum of recorded batch wall times (the denominator for shares).
    pub critical_secs: f64,
    /// Batches in the run.
    pub batches: usize,
}

impl BlameTable {
    /// The dominant phase: the largest critical-path row (ingest excluded —
    /// it is wall-side context, not critical-path time). `None` for an
    /// empty run.
    pub fn dominant(&self) -> Option<Phase> {
        self.rows
            .iter()
            .filter(|r| r.phase != Phase::Ingest)
            .max_by(|a, b| a.secs.total_cmp(&b.secs))
            .filter(|r| r.secs > 0.0)
            .map(|r| r.phase)
    }

    /// A row by phase.
    pub fn row(&self, phase: Phase) -> Option<&BlameRow> {
        self.rows.iter().find(|r| r.phase == phase)
    }

    /// Renders the table for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>8} {:>10}",
            "phase", "path secs", "share", "on path"
        );
        for row in &self.rows {
            let share = if self.critical_secs > 0.0 && row.phase != Phase::Ingest {
                format!("{:.1}%", 100.0 * row.secs / self.critical_secs)
            } else {
                "-".to_string()
            };
            let on_path = if row.phase == Phase::Ingest {
                "wall".to_string()
            } else {
                format!("{}/{}", row.batches_on_path, self.batches)
            };
            let _ = writeln!(
                out,
                "{:<14} {:>12.6} {:>8} {:>10}",
                row.phase.name(),
                row.secs,
                share,
                on_path
            );
        }
        if let Some(dominant) = self.dominant() {
            let _ = writeln!(out, "dominant phase: {}", dominant.name());
        }
        out
    }
}

/// Builds a [`RunProfile`] from a parsed journal.
///
/// Batches come from `batch_summary` points; per-task durations from
/// `task_duration` points; latency percentiles from `record_latency`
/// points; wall-side ingest from `prefetch` spans plus the gaps between
/// consecutive `batch` spans on each thread that runs them.
pub fn analyze(journal: &Journal) -> RunProfile {
    let mut profile = RunProfile {
        drops: journal.drops,
        ..RunProfile::default()
    };

    // A journal may hold several runs back-to-back (the bench harness
    // traces its whole matrix into one file), so batch indices repeat.
    // Points therefore attach by *occurrence* in journal order: each
    // `batch_summary` opens a new occurrence of its index, `task_duration`
    // points follow their summary (the driver emits them right after it),
    // and `record_latency` precedes its summary under the synchronous
    // protocol (buffered until the summary arrives) but follows it under
    // the asynchronous one (attached to the still-latency-less occurrence).
    let mut current: BTreeMap<u64, usize> = BTreeMap::new();
    let mut pending_latency: BTreeMap<u64, LatencyDigest> = BTreeMap::new();
    for point in journal.events.iter().filter(|e| e.kind == EventKind::Point) {
        let get = |key: &str| point.field(key).unwrap_or(0.0);
        match point.name.as_str() {
            "batch_summary" => {
                let batch = point.batch.unwrap_or(0);
                current.insert(batch, profile.batches.len());
                profile.batches.push(BatchProfile {
                    batch,
                    records: get("records"),
                    assignment_secs: get("assignment_secs"),
                    local_secs: get("local_secs"),
                    global_secs: get("global_secs"),
                    overhead_secs: get("overhead_secs"),
                    total_secs: get("total_secs"),
                    async_overlap: get("async_overlap") != 0.0,
                    parallelism: get("parallelism") as usize,
                    stragglers: get("stragglers"),
                    step_tasks: [Vec::new(), Vec::new()],
                    latency: pending_latency.remove(&batch),
                });
            }
            "task_duration" => {
                let Some(batch) = point.batch else { continue };
                let Some(&pos) = current.get(&batch) else {
                    continue;
                };
                let step = get("step") as usize;
                if let Some(tasks) = profile.batches[pos].step_tasks.get_mut(step) {
                    tasks.push(get("secs"));
                }
            }
            "record_latency" => {
                let Some(batch) = point.batch else { continue };
                let digest = LatencyDigest {
                    records: get("records"),
                    mean_secs: get("mean_secs"),
                    p50_secs: get("p50_secs"),
                    p95_secs: get("p95_secs"),
                    p99_secs: get("p99_secs"),
                };
                match current.get(&batch).map(|&pos| &mut profile.batches[pos]) {
                    Some(open) if open.latency.is_none() => open.latency = Some(digest),
                    _ => {
                        pending_latency.insert(batch, digest);
                    }
                }
            }
            _ => {}
        }
    }

    profile.ingest_secs = ingest_secs(journal);
    profile
}

/// Wall-side ingest estimate: total `prefetch` span time, plus on each
/// thread the gaps between a `batch` span's close and the next `batch`
/// span's open (where the unprefetched batcher drains the source).
fn ingest_secs(journal: &Journal) -> f64 {
    let mut total_us: u64 = 0;
    // (thread, close t_us) of the last top-level batch span seen.
    let mut last_batch_close: Vec<(u64, u64)> = Vec::new();
    for event in &journal.events {
        if event.kind != EventKind::Close && event.kind != EventKind::Open {
            continue;
        }
        if event.name == "prefetch" && event.kind == EventKind::Close {
            total_us += event.dur_us;
            continue;
        }
        if event.name != "batch" {
            continue;
        }
        match event.kind {
            EventKind::Open => {
                if let Some(pos) = last_batch_close
                    .iter()
                    .position(|(t, _)| *t == event.thread)
                {
                    let (_, closed_at) = last_batch_close.swap_remove(pos);
                    total_us += event.t_us.saturating_sub(closed_at);
                }
            }
            EventKind::Close => {
                last_batch_close.retain(|(t, _)| *t != event.thread);
                last_batch_close.push((event.thread, event.t_us));
            }
            EventKind::Point => {}
        }
    }
    total_us as f64 / 1e6
}

/// Multiset of span names in the journal (open events), sorted — a
/// structure fingerprint that must be invariant across parallelism degrees
/// and repeated runs of the same workload.
pub fn span_multiset(journal: &Journal) -> Vec<(String, usize)> {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for event in &journal.events {
        if event.kind == EventKind::Open {
            *counts.entry(event.name.as_str()).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .map(|(name, count)| (name.to_string(), count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_journal;

    fn summary(
        batch: u64,
        asg: f64,
        local: f64,
        global: f64,
        overhead: f64,
        overlap: bool,
    ) -> String {
        let total = if overlap {
            (asg + local).max(global) + overhead
        } else {
            asg + local + global + overhead
        };
        format!(
            "{{\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":{seq},\"t_us\":{seq},\"batch\":{batch},\
             \"records\":100.0,\"assignment_secs\":{asg},\"local_secs\":{local},\"global_secs\":{global},\
             \"overhead_secs\":{overhead},\"total_secs\":{total},\"async_overlap\":{ov},\
             \"broadcast_bytes\":0,\"shuffle_bytes\":0,\"stragglers\":0,\"parallelism\":4}}",
            seq = batch * 10,
            ov = if overlap { 1.0 } else { 0.0 },
        )
    }

    fn build(lines: &[String]) -> RunProfile {
        let mut contents =
            String::from("{\"ev\":\"meta\",\"version\":1,\"clock\":\"monotonic-us\"}");
        for line in lines {
            contents.push('\n');
            contents.push_str(line);
        }
        analyze(&parse_journal(&contents).expect("journal parses"))
    }

    #[test]
    fn sync_critical_path_chains_all_four_phases() {
        let run = build(&[summary(0, 1.0, 0.5, 0.25, 0.25, false)]);
        assert_eq!(run.batches.len(), 1);
        let path = run.batches[0].critical_path();
        let phases: Vec<Phase> = path.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            [
                Phase::Assignment,
                Phase::LocalUpdate,
                Phase::GlobalUpdate,
                Phase::Overhead
            ]
        );
        assert!(run.batches[0].reconcile().is_ok());
    }

    #[test]
    fn async_critical_path_takes_the_longer_arm() {
        // Parallel arm dominates: global update is hidden.
        let run = build(&[summary(0, 1.0, 0.5, 0.25, 0.1, true)]);
        let phases: Vec<Phase> = run.batches[0]
            .critical_path()
            .iter()
            .map(|s| s.phase)
            .collect();
        assert_eq!(
            phases,
            [Phase::Assignment, Phase::LocalUpdate, Phase::Overhead]
        );
        assert!(run.batches[0].reconcile().is_ok());

        // Global arm dominates: the parallel steps are hidden.
        let run = build(&[summary(1, 1.0, 0.5, 5.0, 0.1, true)]);
        let phases: Vec<Phase> = run.batches[0]
            .critical_path()
            .iter()
            .map(|s| s.phase)
            .collect();
        assert_eq!(phases, [Phase::GlobalUpdate, Phase::Overhead]);
        assert!(run.batches[0].reconcile().is_ok());
    }

    #[test]
    fn reconcile_flags_inconsistent_summaries() {
        let bad = BatchProfile {
            batch: 0,
            records: 1.0,
            assignment_secs: 1.0,
            local_secs: 1.0,
            global_secs: 1.0,
            overhead_secs: 0.0,
            total_secs: 9.0,
            async_overlap: false,
            parallelism: 1,
            stragglers: 0.0,
            step_tasks: [Vec::new(), Vec::new()],
            latency: None,
        };
        let (path, total) = bad.reconcile().expect_err("inconsistent");
        assert_eq!(path, 3.0);
        assert_eq!(total, 9.0);
    }

    #[test]
    fn blame_table_aggregates_and_names_the_dominant_phase() {
        // Two sync batches dominated by assignment.
        let run = build(&[
            summary(0, 2.0, 0.5, 0.25, 0.25, false),
            summary(1, 3.0, 0.5, 0.25, 0.25, false),
        ]);
        let blame = run.blame();
        assert_eq!(blame.batches, 2);
        assert_eq!(blame.dominant(), Some(Phase::Assignment));
        let row = blame.row(Phase::Assignment).expect("assignment row");
        assert!((row.secs - 5.0).abs() < 1e-12);
        assert_eq!(row.batches_on_path, 2);
        // Run total = 3.0 + 4.0.
        assert!((blame.critical_secs - 7.0).abs() < 1e-12);
        let rendered = blame.render();
        assert!(
            rendered.contains("dominant phase: assignment"),
            "{rendered}"
        );
        assert!(rendered.contains("71.4%"), "{rendered}");
    }

    #[test]
    fn task_durations_and_latency_attach_to_their_batch() {
        let run = build(&[
            summary(0, 1.0, 0.5, 0.25, 0.25, false),
            "{\"ev\":\"point\",\"name\":\"task_duration\",\"thread\":0,\"seq\":100,\"t_us\":100,\"batch\":0,\"step\":0,\"index\":0,\"secs\":0.6}".to_string(),
            "{\"ev\":\"point\",\"name\":\"task_duration\",\"thread\":0,\"seq\":101,\"t_us\":101,\"batch\":0,\"step\":0,\"index\":1,\"secs\":0.4}".to_string(),
            "{\"ev\":\"point\",\"name\":\"task_duration\",\"thread\":0,\"seq\":102,\"t_us\":102,\"batch\":0,\"step\":1,\"index\":0,\"secs\":0.5}".to_string(),
            "{\"ev\":\"point\",\"name\":\"record_latency\",\"thread\":0,\"seq\":103,\"t_us\":103,\"batch\":0,\
             \"records\":100.0,\"mean_secs\":2.5,\"min_secs\":1.0,\"max_secs\":5.0,\"p50_secs\":2.0,\"p95_secs\":4.5,\"p99_secs\":5.0}".to_string(),
        ]);
        let batch = &run.batches[0];
        assert_eq!(batch.step_tasks[0], vec![0.6, 0.4]);
        assert_eq!(batch.step_tasks[1], vec![0.5]);
        assert_eq!(batch.parallelism, 4);
        let latency = batch.latency.expect("latency digest");
        assert_eq!(latency.p95_secs, 4.5);
        assert_eq!(latency.records, 100.0);
    }

    #[test]
    fn repeated_batch_indices_attach_points_per_occurrence() {
        // Two back-to-back runs (the bench matrix shape), both using batch
        // index 0. Run 1 is synchronous: its record_latency point precedes
        // its summary. Run 2's task point follows run 2's summary and must
        // not leak back into run 1's profile.
        let run = build(&[
            "{\"ev\":\"point\",\"name\":\"record_latency\",\"thread\":0,\"seq\":1,\"t_us\":1,\"batch\":0,\
             \"records\":10.0,\"mean_secs\":1.0,\"min_secs\":1.0,\"max_secs\":1.0,\"p50_secs\":1.0,\"p95_secs\":1.0,\"p99_secs\":1.0}".to_string(),
            summary(0, 1.0, 0.5, 0.25, 0.25, false),
            "{\"ev\":\"point\",\"name\":\"task_duration\",\"thread\":0,\"seq\":2,\"t_us\":2,\"batch\":0,\"step\":0,\"index\":0,\"secs\":0.9}".to_string(),
            // Second run, batch index 0 again.
            "{\"ev\":\"point\",\"name\":\"record_latency\",\"thread\":0,\"seq\":3,\"t_us\":3,\"batch\":0,\
             \"records\":20.0,\"mean_secs\":2.0,\"min_secs\":2.0,\"max_secs\":2.0,\"p50_secs\":2.0,\"p95_secs\":2.0,\"p99_secs\":2.0}".to_string(),
            summary(0, 3.0, 0.5, 0.25, 0.25, false),
            "{\"ev\":\"point\",\"name\":\"task_duration\",\"thread\":0,\"seq\":4,\"t_us\":4,\"batch\":0,\"step\":0,\"index\":0,\"secs\":2.9}".to_string(),
        ]);
        assert_eq!(run.batches.len(), 2);
        assert_eq!(run.batches[0].step_tasks[0], vec![0.9]);
        assert_eq!(run.batches[1].step_tasks[0], vec![2.9]);
        assert_eq!(run.batches[0].latency.expect("run 1 latency").records, 10.0);
        assert_eq!(run.batches[1].latency.expect("run 2 latency").records, 20.0);
    }

    #[test]
    fn ingest_comes_from_prefetch_spans_and_batch_gaps() {
        let run = build(&[
            // 2000 us of prefetch on a worker thread.
            "{\"ev\":\"open\",\"span\":\"prefetch\",\"thread\":1,\"seq\":0,\"t_us\":0,\"depth\":0}".to_string(),
            "{\"ev\":\"close\",\"span\":\"prefetch\",\"thread\":1,\"seq\":1,\"t_us\":2000,\"depth\":0,\"dur_us\":2000}".to_string(),
            // Driver: batch 0 closes at 5000, batch 1 opens at 8000 → 3000 us gap.
            "{\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":0,\"t_us\":1000,\"depth\":0,\"batch\":0}".to_string(),
            "{\"ev\":\"close\",\"span\":\"batch\",\"thread\":0,\"seq\":1,\"t_us\":5000,\"depth\":0,\"dur_us\":4000,\"batch\":0}".to_string(),
            "{\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":2,\"t_us\":8000,\"depth\":0,\"batch\":1}".to_string(),
            "{\"ev\":\"close\",\"span\":\"batch\",\"thread\":0,\"seq\":3,\"t_us\":9000,\"depth\":0,\"dur_us\":1000,\"batch\":1}".to_string(),
        ]);
        assert!(
            (run.ingest_secs - 0.005).abs() < 1e-9,
            "{}",
            run.ingest_secs
        );
    }

    #[test]
    fn span_multiset_counts_open_events() {
        let mut contents =
            String::from("{\"ev\":\"meta\",\"version\":1,\"clock\":\"monotonic-us\"}");
        for line in [
            "{\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":0,\"t_us\":0,\"depth\":0}",
            "{\"ev\":\"close\",\"span\":\"batch\",\"thread\":0,\"seq\":1,\"t_us\":1,\"depth\":0,\"dur_us\":1}",
            "{\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":2,\"t_us\":2,\"depth\":0}",
            "{\"ev\":\"close\",\"span\":\"batch\",\"thread\":0,\"seq\":3,\"t_us\":3,\"depth\":0,\"dur_us\":1}",
            "{\"ev\":\"open\",\"span\":\"assignment\",\"thread\":0,\"seq\":4,\"t_us\":4,\"depth\":0}",
            "{\"ev\":\"close\",\"span\":\"assignment\",\"thread\":0,\"seq\":5,\"t_us\":5,\"depth\":0,\"dur_us\":1}",
        ] {
            contents.push('\n');
            contents.push_str(line);
        }
        let journal = parse_journal(&contents).expect("parses");
        assert_eq!(
            span_multiset(&journal),
            vec![("assignment".to_string(), 1), ("batch".to_string(), 2)]
        );
    }
}

//! Trace diffing: phase-by-phase comparison of two runs' blame tables, so
//! a regression report can say *which phase* slowed down instead of just
//! "throughput dropped".
//!
//! Comparisons use each phase's aggregate critical-path seconds. Absolute
//! seconds differ across hosts and calibrations, but the simulated cost
//! model scales every phase uniformly, so the *relative* per-phase deltas
//! stay attributable.

use std::fmt::Write as _;

use crate::analysis::{BlameTable, Phase};

/// One phase's change between a baseline run and a new run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseDelta {
    /// The phase.
    pub phase: Phase,
    /// Baseline critical-path seconds.
    pub base_secs: f64,
    /// New-run critical-path seconds.
    pub new_secs: f64,
}

impl PhaseDelta {
    /// Absolute change in seconds (positive = slower).
    pub fn delta_secs(&self) -> f64 {
        self.new_secs - self.base_secs
    }

    /// Relative change (positive = slower); 0.0 when the baseline phase
    /// recorded no time (a phase appearing from nothing is reported via
    /// `delta_secs`).
    pub fn rel_change(&self) -> f64 {
        if self.base_secs > 0.0 {
            self.delta_secs() / self.base_secs
        } else {
            0.0
        }
    }
}

/// Diffs two blame tables phase by phase, in pipeline order.
pub fn diff_blame(base: &BlameTable, new: &BlameTable) -> Vec<PhaseDelta> {
    Phase::ALL
        .iter()
        .map(|&phase| PhaseDelta {
            phase,
            base_secs: base.row(phase).map_or(0.0, |r| r.secs),
            new_secs: new.row(phase).map_or(0.0, |r| r.secs),
        })
        .collect()
}

/// The phase to blame for a slowdown: the largest absolute critical-path
/// growth (ingest excluded — it is wall-side, not critical-path time).
/// `None` when nothing grew.
pub fn attribute_regression(deltas: &[PhaseDelta]) -> Option<PhaseDelta> {
    deltas
        .iter()
        .filter(|d| d.phase != Phase::Ingest)
        .max_by(|a, b| a.delta_secs().total_cmp(&b.delta_secs()))
        .filter(|d| d.delta_secs() > 0.0)
        .copied()
}

/// Renders the phase-by-phase diff for terminal output.
pub fn render(deltas: &[PhaseDelta]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>11} {:>8}",
        "phase", "base secs", "new secs", "delta", "change"
    );
    for d in deltas {
        let change = if d.base_secs > 0.0 {
            format!("{:+.1}%", 100.0 * d.rel_change())
        } else if d.new_secs > 0.0 {
            "new".to_string()
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{:<14} {:>12.6} {:>12.6} {:>+11.6} {:>8}",
            d.phase.name(),
            d.base_secs,
            d.new_secs,
            d.delta_secs(),
            change
        );
    }
    if let Some(worst) = attribute_regression(deltas) {
        let _ = writeln!(
            out,
            "largest regression: {} ({:+.6}s, {:+.1}%)",
            worst.phase.name(),
            worst.delta_secs(),
            100.0 * worst.rel_change()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{BlameRow, BlameTable};

    fn table(assignment: f64, local: f64, global: f64, overhead: f64) -> BlameTable {
        let secs = [0.0, assignment, local, global, overhead];
        BlameTable {
            rows: Phase::ALL
                .iter()
                .zip(secs)
                .map(|(&phase, secs)| BlameRow {
                    phase,
                    secs,
                    batches_on_path: 1,
                })
                .collect(),
            critical_secs: assignment + local + global + overhead,
            batches: 1,
        }
    }

    #[test]
    fn diff_reports_per_phase_deltas() {
        let base = table(1.0, 0.5, 0.25, 0.25);
        let new = table(1.0, 0.8, 0.25, 0.25);
        let deltas = diff_blame(&base, &new);
        let local = deltas
            .iter()
            .find(|d| d.phase == Phase::LocalUpdate)
            .unwrap();
        assert!((local.delta_secs() - 0.3).abs() < 1e-12);
        assert!((local.rel_change() - 0.6).abs() < 1e-12);
        let unchanged = deltas
            .iter()
            .find(|d| d.phase == Phase::Assignment)
            .unwrap();
        assert_eq!(unchanged.delta_secs(), 0.0);
    }

    #[test]
    fn attribution_picks_the_largest_growth_and_ignores_improvements() {
        let base = table(1.0, 0.5, 0.25, 0.25);
        let new = table(0.5, 0.9, 0.35, 0.25);
        let worst = attribute_regression(&diff_blame(&base, &new)).expect("regression");
        assert_eq!(worst.phase, Phase::LocalUpdate);

        // Everything faster: nothing to blame.
        let faster = table(0.5, 0.4, 0.2, 0.2);
        assert_eq!(attribute_regression(&diff_blame(&base, &faster)), None);
    }

    #[test]
    fn render_names_the_largest_regression() {
        let base = table(1.0, 0.5, 0.25, 0.25);
        let new = table(1.0, 0.8, 0.25, 0.25);
        let out = render(&diff_blame(&base, &new));
        assert!(out.contains("largest regression: local_update"), "{out}");
        assert!(out.contains("+60.0%"), "{out}");
    }
}

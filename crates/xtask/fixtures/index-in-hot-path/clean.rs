//! Fixture: iterator zip avoids the panic-capable indexing.

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum()
}

fn array_literal_is_not_indexing() -> [u8; 4] {
    let zeros: [u8; 4] = [0; 4];
    zeros
}

//! Fixture: an inline allow suppresses the `index-in-hot-path` rule.

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut total = 0.0;
    for i in 0..a.len() {
        // lint:allow(index-in-hot-path) bounds proven by the len() loop bound
        let d = a[i] - b[i];
        total += d * d;
    }
    total
}

//! Fixture: slice indexing on a per-record path.

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut total = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        total += d * d;
    }
    total
}

//! Fixture: the sink is sorted after the loop, restoring determinism.

fn centroid_ids(clusters: &HashMap<u64, Cluster>) -> Vec<u64> {
    let mut ids = Vec::new();
    for (id, _) in clusters {
        ids.push(*id);
    }
    ids.sort_unstable();
    ids
}

fn btree_is_ordered(clusters: &BTreeMap<u64, Cluster>) -> Vec<u64> {
    let mut ids = Vec::new();
    for (id, _) in clusters {
        ids.push(*id);
    }
    ids
}

//! Fixture: an inline allow suppresses the `determinism-dataflow` rule.

fn centroid_ids(clusters: &HashMap<u64, Cluster>) -> Vec<u64> {
    let mut ids = Vec::new();
    // lint:allow(determinism-dataflow) order is re-established downstream
    for (id, _) in clusters {
        ids.push(*id);
    }
    ids
}

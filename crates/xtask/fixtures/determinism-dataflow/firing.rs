//! Fixture: hash iteration order leaking into an ordered output.

fn centroid_ids(clusters: &HashMap<u64, Cluster>) -> Vec<u64> {
    let mut ids = Vec::new();
    for (id, _) in clusters {
        ids.push(*id);
    }
    ids
}

//! Fixture: an inline allow suppresses the `ignored-result` rule.

fn best_effort_checkpoint(store: &mut FileCheckpointStore, cp: &Checkpoint) {
    // lint:allow(ignored-result) best-effort save on the shutdown path
    store.persist(cp);
}

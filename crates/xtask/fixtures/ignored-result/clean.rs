//! Fixture: the write's Result is propagated or handled.

fn checkpoint(store: &mut FileCheckpointStore, cp: &Checkpoint) -> Result<(), DistStreamError> {
    store.persist(cp)?;
    let outcome = store.write_manifest(cp);
    if let Err(err) = outcome {
        return Err(err);
    }
    Ok(())
}

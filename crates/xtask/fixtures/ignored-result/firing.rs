//! Fixture: a checkpoint write whose Result is silently dropped.

fn checkpoint(store: &mut FileCheckpointStore, cp: &Checkpoint) {
    store.persist(cp);
}

//! Fixture: the invariant making the block sound is documented.

fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points into a live allocation.
    unsafe { *p }
}

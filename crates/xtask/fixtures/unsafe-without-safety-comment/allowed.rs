//! Fixture: an inline allow suppresses the `unsafe-without-safety-comment` rule.

fn read_raw(p: *const u8) -> u8 {
    // lint:allow(unsafe-without-safety-comment) vetted in review, comment pending
    unsafe { *p }
}

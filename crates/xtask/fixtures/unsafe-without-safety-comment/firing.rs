//! Fixture: an `unsafe` block missing its safety justification comment.

fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

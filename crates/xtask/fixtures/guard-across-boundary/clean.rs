//! Fixture: the guard is confined or dropped before the boundary.

fn publish_scoped(model: &Mutex<Model>, tx: &Sender<Update>) {
    let snapshot = {
        let guard = model.lock().unwrap();
        guard.snapshot()
    };
    tx.send(snapshot);
}

fn publish_dropped(model: &Mutex<Model>, tx: &Sender<Update>) {
    let guard = model.lock().unwrap();
    let snapshot = guard.snapshot();
    drop(guard);
    tx.send(snapshot);
}

//! Fixture: an inline allow suppresses the `guard-across-boundary` rule.

fn publish(model: &Mutex<Model>, tx: &Sender<Update>) {
    let guard = model.lock().unwrap();
    // lint:allow(guard-across-boundary) the channel is unbounded; no deadlock
    tx.send(guard.snapshot());
}

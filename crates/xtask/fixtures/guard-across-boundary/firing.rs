//! Fixture: a lock guard held across a channel send.

fn publish(model: &Mutex<Model>, tx: &Sender<Update>) {
    let guard = model.lock().unwrap();
    tx.send(guard.snapshot());
}

//! Fixture: shipping-path panics the `panic-path` rule must flag.

fn lookup(xs: &[u64], id: u64) -> u64 {
    let found = xs.iter().find(|&&x| x == id);
    found.copied().unwrap()
}

fn classify(kind: &str) -> u32 {
    match kind {
        "local" => 0,
        "global" => 1,
        other => panic!("unknown kind {other}"),
    }
}

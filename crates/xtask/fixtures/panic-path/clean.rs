//! Fixture: typed-error handling the `panic-path` rule must accept.

fn lookup(xs: &[u64], id: u64) -> Result<u64, String> {
    xs.iter()
        .find(|&&x| x == id)
        .copied()
        .ok_or_else(|| format!("unknown id {id}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        super::lookup(&[1], 1).unwrap();
    }
}

//! Fixture: an inline allow suppresses the `panic-path` rule.

fn lookup(xs: &[u64], id: u64) -> u64 {
    // lint:allow(panic-path) the caller guarantees id is present
    xs.iter().find(|&&x| x == id).copied().unwrap()
}

//! Fixture: names resolving by const path and by literal value.

fn run_batch() {
    let _span = telemetry::span!("batch");
    telemetry::counter(telemetry::names::METRIC_BATCHES_TOTAL).inc();
    telemetry::counter("diststream_batches_total{kind=\"x\"}").inc();
}

//! Fixture: an inline allow suppresses the `telemetry-names` rule.

fn run_batch() {
    // lint:allow(telemetry-names) experimental span, not yet in the catalog
    let _span = telemetry::span!("experimental_phase");
}

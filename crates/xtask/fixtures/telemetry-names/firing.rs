//! Fixture: a span name that does not resolve against the catalog.

fn run_batch() {
    let _span = telemetry::span!("bacth");
    telemetry::counter(telemetry::names::METRIC_DOES_NOT_EXIST).inc();
}

//! A minimal Rust lexer for the lint and analyze passes.
//!
//! The build environment has no crates.io access, so the passes cannot
//! use `syn`; instead they tokenize source text directly. The lexer strips
//! comments, char literals, and numbers — everything the lint rules
//! could false-positive on — and keeps identifiers, punctuation, and
//! string literals with line numbers. Consecutive `::` colons are fused
//! into [`Tok::PathSep`] so rules can match path patterns like
//! `Ordering::Relaxed` structurally. String literals carry their contents
//! as [`Tok::Str`] so the telemetry-name conformance rule can resolve
//! `span!("batch")`-style names against the catalog; ident/punct pattern
//! rules are unaffected because a string can never appear *inside* the
//! `.unwrap(`/`Ordering::Relaxed`-shaped sequences they match.

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Punct(char),
    /// A `::` pair.
    PathSep,
    /// A string literal's unescaped-as-written contents (escape sequences
    /// are kept verbatim; the rules only match plain-ASCII names).
    Str(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenizes `source`, discarding comments, literals, and whitespace.
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let start = i + 1;
                i = skip_string(&chars, start, &mut line, 0);
                let end = i.saturating_sub(1).max(start); // drop the closing quote
                tokens.push(Token {
                    tok: Tok::Str(chars[start..end.min(chars.len())].iter().collect()),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime or char literal. `'\x'`-style and `'c'` are
                // literals; `'ident` without a closing quote is a lifetime.
                if i + 1 < n && chars[i + 1] == '\\' {
                    i += 2; // opening quote + backslash
                    if i < n {
                        i += 1; // escaped char (covers \', \n, first of \x..)
                    }
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1; // closing quote
                } else if i + 2 < n && chars[i + 2] == '\'' {
                    i += 3; // 'c'
                } else {
                    i += 1; // lifetime tick; identifier lexes next round
                }
            }
            c if c.is_ascii_digit() => {
                // Numbers carry no lint signal; consume and drop. The `.`
                // is left alone so float syntax lexes as number-punct-number.
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            c if c == '_' || c.is_alphabetic() => {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw/byte string prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
                if (word == "r" || word == "b" || word == "br") && i < n {
                    if chars[i] == '"' {
                        let start_line = line;
                        let start = i + 1;
                        i = if word == "b" {
                            skip_string(&chars, start, &mut line, 0)
                        } else {
                            skip_raw_string(&chars, start, &mut line, 0)
                        };
                        let end = i.saturating_sub(1).max(start);
                        tokens.push(Token {
                            tok: Tok::Str(chars[start..end.min(chars.len())].iter().collect()),
                            line: start_line,
                        });
                        continue;
                    }
                    if chars[i] == '#' && word != "b" {
                        let mut hashes = 0;
                        while i < n && chars[i] == '#' {
                            hashes += 1;
                            i += 1;
                        }
                        if i < n && chars[i] == '"' {
                            let start_line = line;
                            let start = i + 1;
                            i = skip_raw_string(&chars, start, &mut line, hashes);
                            let end = i.saturating_sub(1 + hashes).max(start);
                            tokens.push(Token {
                                tok: Tok::Str(chars[start..end.min(chars.len())].iter().collect()),
                                line: start_line,
                            });
                            continue;
                        }
                        // `r#ident` raw identifier: emit the identifier.
                        continue;
                    }
                }
                tokens.push(Token {
                    tok: Tok::Ident(word),
                    line,
                });
            }
            ':' if i + 1 < n && chars[i + 1] == ':' => {
                tokens.push(Token {
                    tok: Tok::PathSep,
                    line,
                });
                i += 2;
            }
            other => {
                tokens.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

/// Skips a (non-raw) string body starting after the opening quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32, _hashes: usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string body (no escapes) until `"` followed by `hashes` `#`s.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut u32, hashes: usize) -> usize {
    let n = chars.len();
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Removes every token inside a `#[cfg(test)]`-gated item (typically
/// `mod tests { … }`), so rules only see shipping code.
///
/// An attribute whose idents include `test` but not `not` gates the next
/// item; the exclusion runs to the item's closing brace (or terminating
/// semicolon for brace-less items).
pub fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut kept = Vec::with_capacity(tokens.len());
    let mut i = 0;
    let n = tokens.len();
    while i < n {
        if tokens[i].tok == Tok::Punct('#') && i + 1 < n && tokens[i + 1].tok == Tok::Punct('[') {
            let (attr_end, idents) = scan_attribute(tokens, i + 1);
            let has = |name: &str| idents.iter().any(|id| id == name);
            // `#[test]` or `#[cfg(test)]`-style gates exclude the item;
            // `cfg(not(test))` and `cfg_attr(test, …)` guard shipping code.
            let is_test_gate = (idents.len() == 1 && idents[0] == "test")
                || (has("cfg") && has("test") && !has("not") && !has("cfg_attr"));
            if is_test_gate {
                i = skip_gated_item(tokens, attr_end);
                continue;
            }
        }
        kept.push(tokens[i].clone());
        i += 1;
    }
    kept
}

/// Scans an attribute starting at its `[`; returns (index past `]`, idents).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, Vec<String>) {
    let mut depth = 0;
    let mut idents = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, idents);
                }
            }
            Tok::Ident(id) => idents.push(id.clone()),
            _ => {}
        }
        i += 1;
    }
    (i, idents)
}

/// Skips the item a test-gate attribute applies to: further attributes,
/// then tokens through the matching `}` (or a top-level `;`).
fn skip_gated_item(tokens: &[Token], mut i: usize) -> usize {
    let n = tokens.len();
    // Additional attributes on the same item.
    while i + 1 < n && tokens[i].tok == Tok::Punct('#') && tokens[i + 1].tok == Tok::Punct('[') {
        let (end, _) = scan_attribute(tokens, i + 1);
        i = end;
    }
    let mut brace_depth = 0;
    while i < n {
        match tokens[i].tok {
            Tok::Punct('{') => brace_depth += 1,
            Tok::Punct('}') => {
                brace_depth -= 1;
                if brace_depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';') if brace_depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Collects `// lint:allow(rule)` escape hatches: map of line → rule names
/// allowed on that line (and, by the caller's convention, the next line).
pub fn inline_allows(source: &str) -> Vec<(u32, String)> {
    let mut allows = Vec::new();
    for (idx, text) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        let mut rest = text;
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            if let Some(close) = after.find(')') {
                allows.push((line, after[..close].trim().to_string()));
                rest = &after[close + 1..];
            } else {
                break;
            }
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(id) => Some(id),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block comment */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw string"#;
            let b = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|w| *w == "HashMap").count(), 1);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'de>(c: char) { let x = 'λ'; let y = '\\n'; let z: &'static str = s; }";
        let ids = idents(src);
        assert!(ids.contains(&"de".to_string()));
        assert!(ids.contains(&"static".to_string()));
        // The literal contents never become identifiers.
        assert!(!ids.contains(&"n".to_string()));
    }

    #[test]
    fn string_literal_contents_are_captured() {
        let toks = lex(r##"span!("batch"); let r = r#"raw_name"#; let b = b"bytes";"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["batch", "raw_name", "bytes"]);
    }

    #[test]
    fn escaped_string_contents_keep_escapes_verbatim() {
        let toks = lex(r#"f("a\"b");"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r#"a\"b"#]);
    }

    #[test]
    fn path_sep_is_fused() {
        let toks = lex("Ordering::Relaxed");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].tok, Tok::PathSep);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn test_mod_is_stripped() {
        let src = r#"
            fn shipping() { spawn(); }
            #[cfg(test)]
            mod tests {
                fn helper() { thread::spawn(|| {}); }
            }
            fn also_shipping() {}
        "#;
        let kept = strip_test_code(&lex(src));
        let ids: Vec<&String> = kept
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(id) => Some(id),
                _ => None,
            })
            .collect();
        assert!(ids.iter().any(|id| *id == "also_shipping"));
        assert!(!ids.iter().any(|id| *id == "thread"));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(not(test))] fn shipping() { thread::spawn(|| {}); }";
        let kept = strip_test_code(&lex(src));
        assert!(kept
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(id) if id == "thread")));
    }

    #[test]
    fn inline_allow_parsing() {
        let src = "let x = 1; // lint:allow(no-panic) justification text\nplain line\n// lint:allow(wallclock-entropy)\n";
        let allows = inline_allows(src);
        assert_eq!(
            allows,
            vec![
                (1, "no-panic".to_string()),
                (3, "wallclock-entropy".to_string())
            ]
        );
    }
}

//! A lightweight recursive-descent item parser over the lexer's tokens.
//!
//! The flow-aware analyze rules need more structure than flat token
//! patterns: the determinism-dataflow rule tracks a variable from its
//! binding to a loop over it *within one function*, and the
//! guard-across-boundary rule needs a lock guard's enclosing block. This
//! parser recovers exactly that much structure — the function items of a
//! file with their body token ranges — and nothing more: no expressions,
//! no types, no external dependencies. It walks `mod`/`impl`/`trait`
//! blocks recursively by construction, because it scans the token stream
//! linearly and a nested `fn` is just the next `fn` keyword it meets.

use crate::lexer::{Tok, Token};

/// One `fn` item: its name, the line of the `fn` keyword, and the token
/// index ranges of the item — `tokens[start]` is the `fn` keyword itself
/// (so `start..body_start` covers the signature, where parameter types
/// live), `tokens[body_start]` is the opening `{`, `tokens[body_end]` the
/// matching `}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    pub name: String,
    pub line: u32,
    pub start: usize,
    pub body_start: usize,
    pub body_end: usize,
}

/// Extracts every function item with a body. Trait method declarations
/// (terminated by `;`) are skipped. Nested functions are reported both as
/// their own item and inside the enclosing body range; rules that walk
/// bodies tolerate the overlap because their findings are keyed by line.
pub fn functions(tokens: &[Token]) -> Vec<Function> {
    let mut out = Vec::new();
    let n = tokens.len();
    let mut i = 0;
    while i < n {
        if !matches!(&tokens[i].tok, Tok::Ident(id) if id == "fn") {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
            i += 1; // `fn` in a closure type like `Fn() -> T`, or EOF
            continue;
        };
        let name = name.clone();
        // Scan the signature for the body's `{` (or a `;` for a bodyless
        // declaration). `;` inside `[u8; 4]`-style types hides at bracket
        // depth > 0; a signature contains no braces before the body.
        let mut j = i + 2;
        let mut depth = 0i32; // () and [] nesting
        let mut body = None;
        while j < n {
            match tokens[j].tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct('{') if depth == 0 => {
                    body = Some(j);
                    break;
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body_start) = body else {
            i = j + 1;
            continue;
        };
        let body_end = match_brace(tokens, body_start);
        out.push(Function {
            name,
            line,
            start: i,
            body_start,
            body_end,
        });
        i = body_start + 1; // descend into the body: nested fns still found
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        match token.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn names(src: &str) -> Vec<String> {
        functions(&lex(src)).into_iter().map(|f| f.name).collect()
    }

    #[test]
    fn finds_free_and_impl_functions() {
        let src = "fn top() {} impl S { fn method(&self) -> u32 { 1 } } mod m { fn inner() {} }";
        assert_eq!(names(src), vec!["top", "method", "inner"]);
    }

    #[test]
    fn skips_trait_declarations_without_bodies() {
        let src = "trait T { fn decl(&self) -> u32; fn with_default(&self) -> u32 { 0 } }";
        assert_eq!(names(src), vec!["with_default"]);
    }

    #[test]
    fn array_semicolon_in_return_type_is_not_a_terminator() {
        let src = "fn digest(&self) -> [u8; 32] { todo() }";
        let fns = functions(&lex(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "digest");
    }

    #[test]
    fn closure_fn_trait_bound_is_not_an_item() {
        let src = "fn apply<F: Fn() -> u32>(f: F) -> u32 { f() }";
        assert_eq!(names(src), vec!["apply"]);
    }

    #[test]
    fn nested_function_reported_separately() {
        let src = "fn outer() { fn inner() { helper(); } inner(); }";
        assert_eq!(names(src), vec!["outer", "inner"]);
        let fns = functions(&lex(src));
        // inner's body nests inside outer's.
        assert!(fns[1].body_start > fns[0].body_start);
        assert!(fns[1].body_end < fns[0].body_end);
    }

    #[test]
    fn body_range_brackets_the_braces() {
        let toks = lex("fn f(x: u32) { if x > 0 { g(); } }");
        let fns = functions(&toks);
        assert_eq!(toks[fns[0].body_start].tok, Tok::Punct('{'));
        assert_eq!(fns[0].body_end, toks.len() - 1);
    }
}

//! `xtask bench-check`: the CI performance-regression gate.
//!
//! Re-runs the `bench_baseline` workload and compares the fresh throughput
//! numbers against the committed baseline (`BENCH_BASELINE.json`, or
//! `BENCH_BASELINE_QUICK.json` with `--quick` — the two workloads have
//! different warmup fractions and model shapes, so cross-mode comparison
//! would be meaningless). Fresh measurements land in a mode-namespaced
//! output (`BENCH_CURRENT_QUICK.json` / `BENCH_CURRENT_DEFAULT.json`) so a
//! quick gate and a full run never clobber each other's artifacts, and any
//! file whose recorded `mode` does not match the requested workload is
//! refused. See DESIGN.md §9 for the policy.
//!
//! Machine-speed normalization: each baseline file records a
//! `calibration_score` (element rate of a fixed subtract-square-accumulate
//! loop). Fresh throughput is scaled by `committed_cal / fresh_cal` before
//! comparison, so a uniformly slower CI runner does not read as a
//! regression. A cell fails when its normalized fresh rate drops more than
//! [`REGRESSION_TOLERANCE`] below the committed rate; because single-core
//! runners occasionally degrade mid-run (cache contention from co-tenants
//! that the FLOP-bound calibration loop does not see), the measurement is
//! retried up to [`MAX_ATTEMPTS`] times keeping the best rate per cell, and
//! stops early once everything passes.
//!
//! Overlap win: the overlapped pipeline exists to beat the synchronous one,
//! so the gate additionally requires CluStream at p = 4 to run at least
//! [`OVERLAP_WIN_FACTOR`]× faster overlapped than sync — checked on the
//! committed file (a hard error: a blessed baseline without the win is
//! stale) and on the fresh measurement (retryable like any cell failure).
//! The ratio compares two cells of the same run, so calibration cancels.
//!
//! Scaling loss — a cell whose `p=4 / p=1` speedup fell below half its
//! committed value — is *reported* but does not fail the gate: on small
//! runners the simulated-makespan scaling signal is real but noisy.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use diststream_trace::{attribute_regression, Phase, PhaseDelta};

use crate::json::{self, Json};

/// Maximum tolerated relative throughput drop (0.15 = 15%).
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// Reported (non-fatal) loss factor for the p/p1 scaling ratios.
pub const SCALING_LOSS_FACTOR: f64 = 2.0;

/// Parallelism degrees whose speedup over p = 1 the scaling-loss report
/// covers (every degree of the schema-6 matrix above the singleton).
pub const SCALING_DEGREES: [u64; 3] = [4, 8, 16];

/// Fresh-measurement attempts before declaring a regression real.
pub const MAX_ATTEMPTS: usize = 3;

/// Required overlapped-over-sync throughput factor for CluStream at
/// [`OVERLAP_WIN_PARALLELISM`] (the ISSUE's acceptance bar).
pub const OVERLAP_WIN_FACTOR: f64 = 1.25;

/// Parallelism degree the overlap-win gate checks.
pub const OVERLAP_WIN_PARALLELISM: u64 = 4;

/// Algorithm the overlap-win gate checks.
pub const OVERLAP_WIN_ALGO: &str = "clustream";

/// Baseline schema version this checker understands (mirrors
/// `diststream_bench::BASELINE_SCHEMA`; the checker keeps its own JSON
/// parser rather than depending on the bench crate it is gating).
/// v3 adds `overhead_secs` and the event-time latency percentile columns.
/// v4 adds the per-entry `strategy` column and the `shuffle_skew` section.
/// v5 adds the `overload` section (shed fraction, error bound, achieved vs
/// target latency, quality delta, p=1/p=4 model digests).
/// v6 extends the throughput matrix to p ∈ {1, 4, 8, 16} and adds the
/// `serving` section whose `predict_qps` column this checker gates.
const SUPPORTED_SCHEMA: f64 = 6.0;

/// Previous schema versions, still accepted read-only. A v5 file predates
/// the `serving` section and the p ∈ {8, 16} matrix columns; a v4 file
/// additionally lacks the `overload` section; a v3 file additionally lacks
/// the `strategy` column and the `shuffle_skew` section. Gates whose
/// columns are missing are *explicitly skipped with a printed note* —
/// never silently defaulted.
const LEGACY_SCHEMA_V5: f64 = 5.0;

/// See [`LEGACY_SCHEMA_V5`].
const LEGACY_SCHEMA_V4: f64 = 4.0;

/// See [`LEGACY_SCHEMA_V4`].
const LEGACY_SCHEMA_V3: f64 = 3.0;

/// Required round-robin/key-range charged-shuffle-byte ratio (mirrors
/// `diststream_bench::SHUFFLE_SKEW_FACTOR`).
pub const SHUFFLE_SKEW_FACTOR: f64 = 1.2;

/// The overload section of a schema-5 baseline: everything in it is
/// virtual-time deterministic, so its gates are absolute (within-file),
/// never calibration-normalized.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadGate {
    /// Latency bar the approximate path must stay under.
    pub target_latency_secs: f64,
    /// Peak modeled latency of the exact (shed-nothing) run.
    pub exact_latency_secs: f64,
    /// Peak modeled latency of the sampled run.
    pub approx_latency_secs: f64,
    /// Fraction of arrivals the sampler shed.
    pub shed_fraction: f64,
    /// Horvitz–Thompson error bound of the final sample.
    pub error_bound: f64,
    /// Purity lost to sampling; must be covered by the bound.
    pub purity_delta: f64,
    /// Hex model digest of the sampled run at p = 1.
    pub model_digest_p1: String,
    /// Hex model digest at p = 4 — must equal the p = 1 digest.
    pub model_digest_p4: String,
}

/// Every way an overload section can fail its gates. Empty means pass. The
/// measurements are deterministic, so a failure on a committed file is a
/// stale bless and a failure on a fresh file is a real regression — there
/// is nothing to retry.
pub fn overload_failures(gate: &OverloadGate) -> Vec<String> {
    let mut failures = Vec::new();
    if gate.approx_latency_secs > gate.target_latency_secs {
        failures.push(format!(
            "overload: approximate path ran at {:.3}s modeled latency, above the {:.3}s target",
            gate.approx_latency_secs, gate.target_latency_secs
        ));
    }
    if gate.exact_latency_secs <= gate.target_latency_secs {
        failures.push(format!(
            "overload: exact path held {:.3}s latency under the {:.3}s target — the scenario \
             is not overloaded, so the approximate win is vacuous",
            gate.exact_latency_secs, gate.target_latency_secs
        ));
    }
    if gate.shed_fraction <= 0.0 {
        failures.push("overload: nothing was shed — the sampler never engaged".to_string());
    }
    if gate.purity_delta > gate.error_bound {
        failures.push(format!(
            "overload: measured purity delta {:.4} exceeds the reported error bound {:.4}",
            gate.purity_delta, gate.error_bound
        ));
    }
    if gate.model_digest_p1 != gate.model_digest_p4 {
        failures.push(format!(
            "overload: p=1 model digest {} != p=4 digest {} — the sampled run lost its \
             bit-identical replay guarantee",
            gate.model_digest_p1, gate.model_digest_p4
        ));
    }
    failures
}

/// The serving section of a schema-6 baseline: the concurrent-predict
/// workload measured alongside the throughput matrix. `predict_qps` is a
/// wall-clock rate, so its gate is calibration-normalized like the
/// throughput cells; the remaining columns are context for the printout.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingGate {
    /// Driver parallelism of the streaming run the readers raced.
    pub parallelism: f64,
    /// Concurrent predictor threads.
    pub reader_threads: f64,
    /// Answered predicts per wall second of streaming — the gated column.
    pub predict_qps: f64,
    /// Snapshots published during the run (one per applied global update).
    pub epochs_published: f64,
}

/// The predict-throughput failure for the serving gate, if any.
/// `best_qps` is the calibration-normalized best across attempts; `None`
/// means the fresh measurement never carried a serving section.
pub fn serving_failure(committed: Option<&ServingGate>, best_qps: Option<f64>) -> Option<String> {
    let committed = committed?;
    match best_qps {
        Some(qps) if qps < committed.predict_qps * (1.0 - REGRESSION_TOLERANCE) => Some(format!(
            "serving: {qps:.0} predict/s is {:.1}% below the committed {:.0} predict/s \
             (tolerance {:.0}%)",
            (1.0 - qps / committed.predict_qps) * 100.0,
            committed.predict_qps,
            REGRESSION_TOLERANCE * 100.0
        )),
        Some(_) => None,
        None => Some("serving: section missing from the fresh measurement".to_string()),
    }
}

/// A throughput cell key: `(algorithm, pipeline, parallelism)`.
pub type CellKey = (String, String, u64);

/// Per-cell critical-path phase seconds, in pipeline order:
/// `[assignment, local_update, global_update, overhead]`.
pub type PhaseSecs = [f64; 4];

/// One parsed baseline report.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// `"quick"` or `"default"`.
    pub mode: String,
    /// Schema version the file declared ([`SUPPORTED_SCHEMA`] or
    /// [`LEGACY_SCHEMA`]).
    pub schema: f64,
    /// Distribution-strategy label every entry ran under, `None` on a
    /// legacy (v3) file that predates the column.
    pub strategy: Option<String>,
    /// `(roundrobin_bytes, keyrange_bytes)` from the `shuffle_skew`
    /// section, `None` on a legacy (v3) file.
    pub shuffle_skew: Option<(f64, f64)>,
    /// The `overload` section, `None` on a legacy (v3/v4) file.
    pub overload: Option<OverloadGate>,
    /// The `serving` section, `None` on a legacy (v3/v4/v5) file.
    pub serving: Option<ServingGate>,
    /// Machine-speed score recorded alongside the measurements.
    pub calibration: f64,
    /// `(algo, pipeline, parallelism) -> records_per_sec`.
    pub cells: BTreeMap<CellKey, f64>,
    /// Per-cell phase seconds, for regression attribution. A cell may be
    /// absent when a file predates the per-phase columns.
    pub phases: BTreeMap<CellKey, PhaseSecs>,
}

impl Baseline {
    /// The round-robin/key-range charged-byte ratio, if the file carries a
    /// `shuffle_skew` section.
    pub fn shuffle_skew_ratio(&self) -> Option<f64> {
        let (roundrobin, keyrange) = self.shuffle_skew?;
        (keyrange > 0.0).then(|| roundrobin / keyrange)
    }

    /// The printed skip-note for a legacy file: gates whose columns are
    /// missing cannot run, and the skip must be visible — never silent.
    pub fn legacy_note(&self) -> Option<String> {
        if self.schema == LEGACY_SCHEMA_V3 {
            Some(format!(
                "schema {LEGACY_SCHEMA_V3} baseline predates the `strategy` column, the \
                 `shuffle_skew` section, the `overload` section, and the `serving` section — \
                 skipping the key-range shuffle gate, the overload gates, and the serving \
                 gate (re-bless to schema {SUPPORTED_SCHEMA} to enable them)"
            ))
        } else if self.schema == LEGACY_SCHEMA_V4 {
            Some(format!(
                "schema {LEGACY_SCHEMA_V4} baseline predates the `overload` and `serving` \
                 sections — skipping the overload gates and the serving gate (re-bless to \
                 schema {SUPPORTED_SCHEMA} to enable them)"
            ))
        } else if self.schema == LEGACY_SCHEMA_V5 {
            Some(format!(
                "schema {LEGACY_SCHEMA_V5} baseline predates the `serving` section and the \
                 p ∈ {{8, 16}} matrix columns — skipping the serving gate (re-bless to \
                 schema {SUPPORTED_SCHEMA} to enable it)"
            ))
        } else {
            None
        }
    }
}

/// Outcome of comparing one fresh measurement set against the baseline.
#[derive(Debug, Default, PartialEq)]
pub struct Comparison {
    /// `(algo, pipeline, p, committed rate, best normalized fresh rate)`.
    pub rows: Vec<(String, String, u64, f64, f64)>,
    /// Human-readable failures (regressed, missing, or overlap-win cells).
    pub failures: Vec<String>,
    /// Non-fatal p4/p1 scaling-loss reports.
    pub scaling_warnings: Vec<String>,
}

/// Parses a baseline report file's JSON into the comparison shape.
pub fn parse_baseline(contents: &str) -> Result<Baseline, String> {
    let doc = json::parse(contents)?;
    let schema = match doc.get("schema").and_then(Json::as_num) {
        Some(v)
            if v == SUPPORTED_SCHEMA
                || v == LEGACY_SCHEMA_V5
                || v == LEGACY_SCHEMA_V4
                || v == LEGACY_SCHEMA_V3 =>
        {
            v
        }
        Some(v) => {
            return Err(format!(
                "unsupported schema {v} (expected {SUPPORTED_SCHEMA}, or legacy \
                 {LEGACY_SCHEMA_V5}/{LEGACY_SCHEMA_V4}/{LEGACY_SCHEMA_V3})"
            ))
        }
        None => return Err("missing numeric `schema`".to_string()),
    };
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing string `mode`")?
        .to_string();
    let calibration = doc
        .get("calibration_score")
        .and_then(Json::as_num)
        .ok_or("missing numeric `calibration_score`")?;
    // NaN fails too: a baseline without a sane calibration can't normalize.
    if calibration.is_nan() || calibration <= 0.0 {
        return Err(format!("calibration_score {calibration} must be positive"));
    }
    // v4+ files must carry the shuffle_skew section and a strategy column on
    // every entry; v3 files carry neither (the gate is skipped with a note).
    let shuffle_skew = if schema >= LEGACY_SCHEMA_V4 {
        let section = doc
            .get("shuffle_skew")
            .ok_or("schema 4+ requires a `shuffle_skew` section")?;
        let field = |name: &str| {
            section
                .get(name)
                .and_then(Json::as_num)
                .ok_or(format!("shuffle_skew: missing numeric `{name}`"))
        };
        let roundrobin = field("roundrobin_bytes")?;
        let keyrange = field("keyrange_bytes")?;
        if roundrobin <= 0.0 || keyrange <= 0.0 {
            return Err(format!(
                "shuffle_skew: byte counts must be positive (roundrobin {roundrobin}, \
                 keyrange {keyrange})"
            ));
        }
        Some((roundrobin, keyrange))
    } else {
        None
    };
    // v5+ files must carry the overload section (a v4/v3 file skips its
    // gates with a note).
    let overload = if schema >= LEGACY_SCHEMA_V5 {
        let section = doc
            .get("overload")
            .ok_or("schema 5+ requires an `overload` section")?;
        let num = |name: &str| {
            section
                .get(name)
                .and_then(Json::as_num)
                .ok_or(format!("overload: missing numeric `{name}`"))
        };
        let digest = |name: &str| {
            section
                .get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("overload: missing string `{name}`"))
        };
        Some(OverloadGate {
            target_latency_secs: num("target_latency_secs")?,
            exact_latency_secs: num("exact_latency_secs")?,
            approx_latency_secs: num("approx_latency_secs")?,
            shed_fraction: num("shed_fraction")?,
            error_bound: num("error_bound")?,
            purity_delta: num("purity_delta")?,
            model_digest_p1: digest("model_digest_p1")?,
            model_digest_p4: digest("model_digest_p4")?,
        })
    } else {
        None
    };
    // v6 files must carry the serving section (a v5-or-older file skips
    // its gate with a note).
    let serving = if schema == SUPPORTED_SCHEMA {
        let section = doc
            .get("serving")
            .ok_or("schema 6 requires a `serving` section")?;
        let num = |name: &str| {
            section
                .get(name)
                .and_then(Json::as_num)
                .ok_or(format!("serving: missing numeric `{name}`"))
        };
        let gate = ServingGate {
            parallelism: num("parallelism")?,
            reader_threads: num("reader_threads")?,
            predict_qps: num("predict_qps_while_streaming")?,
            epochs_published: num("epochs_published")?,
        };
        if gate.predict_qps.is_nan() || gate.predict_qps <= 0.0 {
            return Err(format!(
                "serving: predict_qps {} must be positive",
                gate.predict_qps
            ));
        }
        if gate.epochs_published <= 0.0 {
            return Err(
                "serving: epochs_published is zero — the run never published a snapshot"
                    .to_string(),
            );
        }
        Some(gate)
    } else {
        None
    };
    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or("missing `entries` array")?;
    let mut cells = BTreeMap::new();
    let mut phases = BTreeMap::new();
    let mut strategy: Option<String> = None;
    for (i, entry) in entries.iter().enumerate() {
        if schema >= LEGACY_SCHEMA_V4 {
            let label = entry.get("strategy").and_then(Json::as_str).ok_or(format!(
                "entry {i}: missing string `strategy` (required by schema 4+)"
            ))?;
            match &strategy {
                None => strategy = Some(label.to_string()),
                Some(first) if first != label => {
                    return Err(format!(
                        "entry {i}: strategy `{label}` differs from `{first}` — a baseline \
                         file measures exactly one strategy"
                    ))
                }
                Some(_) => {}
            }
        }
        let algo = entry
            .get("algo")
            .and_then(Json::as_str)
            .ok_or(format!("entry {i}: missing string `algo`"))?;
        let pipeline = entry
            .get("pipeline")
            .and_then(Json::as_str)
            .ok_or(format!("entry {i}: missing string `pipeline`"))?;
        let p = entry
            .get("parallelism")
            .and_then(Json::as_num)
            .ok_or(format!("entry {i}: missing numeric `parallelism`"))?;
        let rate = entry
            .get("records_per_sec")
            .and_then(Json::as_num)
            .ok_or(format!("entry {i}: missing numeric `records_per_sec`"))?;
        if rate.is_nan() || rate <= 0.0 {
            return Err(format!(
                "entry {i}: records_per_sec {rate} must be positive"
            ));
        }
        let key = (algo.to_string(), pipeline.to_string(), p as u64);
        let phase_cols = [
            "assignment_secs",
            "local_secs",
            "global_secs",
            "overhead_secs",
        ]
        .map(|col| entry.get(col).and_then(Json::as_num));
        if let [Some(a), Some(l), Some(g), Some(o)] = phase_cols {
            phases.insert(key.clone(), [a, l, g, o]);
        }
        cells.insert(key, rate);
    }
    if cells.is_empty() {
        return Err("baseline has no entries".to_string());
    }
    Ok(Baseline {
        mode,
        schema,
        strategy,
        shuffle_skew,
        overload,
        serving,
        calibration,
        cells,
        phases,
    })
}

/// The overlapped/sync throughput ratio for the overlap-win gate's cell, if
/// both pipelines are present in `cells`.
pub fn overlap_win_ratio(cells: &BTreeMap<CellKey, f64>) -> Option<f64> {
    let key = |pipeline: &str| {
        (
            OVERLAP_WIN_ALGO.to_string(),
            pipeline.to_string(),
            OVERLAP_WIN_PARALLELISM,
        )
    };
    let sync = cells.get(&key("sync"))?;
    let overlapped = cells.get(&key("overlapped"))?;
    Some(overlapped / sync)
}

/// Phase-level attribution for a regressed cell: the phase whose
/// critical-path seconds grew the most, rendered as a failure-message
/// suffix. Empty when either side lacks the per-phase columns.
fn attribution_suffix(committed: Option<&PhaseSecs>, fresh: Option<&PhaseSecs>) -> String {
    let (Some(base), Some(new)) = (committed, fresh) else {
        return String::new();
    };
    const PHASES: [Phase; 4] = [
        Phase::Assignment,
        Phase::LocalUpdate,
        Phase::GlobalUpdate,
        Phase::Overhead,
    ];
    let deltas: Vec<PhaseDelta> = PHASES
        .iter()
        .zip(base)
        .zip(new)
        .map(|((&phase, &base_secs), &new_secs)| PhaseDelta {
            phase,
            base_secs,
            new_secs,
        })
        .collect();
    match attribute_regression(&deltas) {
        Some(worst) => format!(
            " — largest phase regression: {} ({:+.3}s, {:+.1}%)",
            worst.phase.name(),
            worst.delta_secs(),
            100.0 * worst.rel_change()
        ),
        None => String::new(),
    }
}

/// Compares best-per-cell normalized fresh rates against the committed
/// baseline. `best` holds the running per-cell maximum across attempts;
/// `best_phases` the phase seconds of each cell's best attempt.
pub fn compare(
    committed: &Baseline,
    best: &BTreeMap<CellKey, f64>,
    best_phases: &BTreeMap<CellKey, PhaseSecs>,
) -> Comparison {
    let mut cmp = Comparison::default();
    for ((algo, pipeline, p), &committed_rate) in &committed.cells {
        let key = (algo.clone(), pipeline.clone(), *p);
        match best.get(&key) {
            Some(&fresh_rate) => {
                cmp.rows.push((
                    algo.clone(),
                    pipeline.clone(),
                    *p,
                    committed_rate,
                    fresh_rate,
                ));
                if fresh_rate < committed_rate * (1.0 - REGRESSION_TOLERANCE) {
                    cmp.failures.push(format!(
                        "{algo} {pipeline} p={p}: {fresh_rate:.0} rec/s is {:.1}% below the \
                         committed {committed_rate:.0} rec/s (tolerance {:.0}%){}",
                        (1.0 - fresh_rate / committed_rate) * 100.0,
                        REGRESSION_TOLERANCE * 100.0,
                        attribution_suffix(committed.phases.get(&key), best_phases.get(&key))
                    ));
                }
            }
            None => cmp.failures.push(format!(
                "{algo} {pipeline} p={p}: missing from the fresh measurement"
            )),
        }
    }
    // Overlap win on the fresh measurement. The ratio compares two cells of
    // the same runs, so the calibration factor cancels.
    match overlap_win_ratio(best) {
        Some(ratio) if ratio < OVERLAP_WIN_FACTOR => cmp.failures.push(format!(
            "{OVERLAP_WIN_ALGO} p={OVERLAP_WIN_PARALLELISM}: overlapped is only {ratio:.2}x \
             sync (gate requires {OVERLAP_WIN_FACTOR}x)"
        )),
        Some(_) => {}
        None if overlap_win_ratio(&committed.cells).is_some() => cmp.failures.push(format!(
            "{OVERLAP_WIN_ALGO} p={OVERLAP_WIN_PARALLELISM}: overlap-win cells missing from \
             the fresh measurement"
        )),
        None => {}
    }
    // p/p1 scaling loss for every degree of [`SCALING_DEGREES`], per
    // (algorithm, pipeline) present at both degrees in both sets. The
    // calibration factor cancels in the ratio.
    let lanes: Vec<(&String, &String)> = committed
        .cells
        .keys()
        .map(|(algo, pipeline, _)| (algo, pipeline))
        .collect();
    for (algo, pipeline) in lanes {
        let key = |p: u64| (algo.clone(), pipeline.clone(), p);
        for degree in SCALING_DEGREES {
            let committed_scaling = match (
                committed.cells.get(&key(degree)),
                committed.cells.get(&key(1)),
            ) {
                (Some(&rp), Some(&r1)) => rp / r1,
                _ => continue,
            };
            let fresh_scaling = match (best.get(&key(degree)), best.get(&key(1))) {
                (Some(&rp), Some(&r1)) => rp / r1,
                _ => continue,
            };
            let tag = format!("{algo} {pipeline} p{degree}/p1");
            if fresh_scaling * SCALING_LOSS_FACTOR < committed_scaling
                && !cmp.scaling_warnings.iter().any(|w| w.starts_with(&tag))
            {
                cmp.scaling_warnings.push(format!(
                    "{tag}: scaling fell from {committed_scaling:.2}x to \
                     {fresh_scaling:.2}x (more than {SCALING_LOSS_FACTOR}x loss)"
                ));
            }
        }
    }
    cmp
}

/// Folds one fresh run into the per-cell best map, normalizing by the
/// calibration ratio so machine speed cancels. Phase seconds follow their
/// cell: when an attempt becomes a cell's best, its phase times (scaled by
/// the inverse ratio — rates scale up where times scale down) come along.
pub fn fold_best(
    committed: &Baseline,
    fresh: &Baseline,
    best: &mut BTreeMap<CellKey, f64>,
    best_phases: &mut BTreeMap<CellKey, PhaseSecs>,
) {
    let scale = committed.calibration / fresh.calibration;
    for (key, &rate) in &fresh.cells {
        let normalized = rate * scale;
        let improved = match best.get(key) {
            Some(&current) => normalized > current,
            None => true,
        };
        if improved {
            best.insert(key.clone(), normalized);
            if let Some(phases) = fresh.phases.get(key) {
                best_phases.insert(key.clone(), phases.map(|secs| secs / scale));
            }
        }
    }
}

/// Repo-relative committed baseline path for a mode.
pub fn committed_path(quick: bool) -> &'static str {
    if quick {
        "BENCH_BASELINE_QUICK.json"
    } else {
        "BENCH_BASELINE.json"
    }
}

/// Repo-relative fresh-measurement output path for a mode. Namespaced per
/// workload so `--quick` gates and full runs never overwrite each other.
pub fn fresh_path(quick: bool) -> &'static str {
    if quick {
        "BENCH_CURRENT_QUICK.json"
    } else {
        "BENCH_CURRENT_DEFAULT.json"
    }
}

/// Runs the full gate: load committed baseline, measure fresh (retrying up
/// to [`MAX_ATTEMPTS`] times, early exit on pass), print the comparison.
/// Returns `Ok(true)` on pass, `Ok(false)` on regression.
pub fn run_gate(root: &Path, quick: bool) -> Result<bool, String> {
    let committed_file = root.join(committed_path(quick));
    let contents = std::fs::read_to_string(&committed_file)
        .map_err(|err| format!("cannot read {}: {err}", committed_file.display()))?;
    let committed =
        parse_baseline(&contents).map_err(|err| format!("{}: {err}", committed_file.display()))?;
    let expected_mode = if quick { "quick" } else { "default" };
    if committed.mode != expected_mode {
        return Err(format!(
            "{}: mode is `{}` but this gate runs the `{expected_mode}` workload — \
             refusing the mismatched baseline",
            committed_file.display(),
            committed.mode
        ));
    }
    // Gates whose columns a legacy file lacks are skipped with a printed
    // note, never silently. Where the columns exist, the blessed values
    // must meet the bar — skew bytes and the overload section are both
    // deterministic, so failing here is a hard error (stale bless), not a
    // flaky measurement.
    if let Some(note) = committed.legacy_note() {
        println!(
            "xtask bench-check: note: {}: {note}",
            committed_file.display()
        );
    }
    if committed.shuffle_skew.is_some() {
        match committed.shuffle_skew_ratio() {
            Some(ratio) if ratio < SHUFFLE_SKEW_FACTOR => {
                return Err(format!(
                    "{}: committed roundrobin/keyrange shuffle-byte ratio is {ratio:.2}x, \
                     below the required {SHUFFLE_SKEW_FACTOR}x — re-bless from a run that \
                     meets the bar",
                    committed_file.display()
                ))
            }
            Some(_) => {}
            None => {
                return Err(format!(
                    "{}: `shuffle_skew` section has a zero keyrange byte count",
                    committed_file.display()
                ))
            }
        }
    }
    if let Some(gate) = &committed.overload {
        let failures = overload_failures(gate);
        if !failures.is_empty() {
            return Err(format!(
                "{}: committed overload section fails its gates — re-bless from a run that \
                 meets the bar:\n  {}",
                committed_file.display(),
                failures.join("\n  ")
            ));
        }
    }
    // A blessed baseline must itself demonstrate the overlap win; failing
    // here is a hard error, not a flaky measurement.
    match overlap_win_ratio(&committed.cells) {
        Some(ratio) if ratio < OVERLAP_WIN_FACTOR => {
            return Err(format!(
                "{}: committed overlapped/sync ratio for {OVERLAP_WIN_ALGO} \
                 p={OVERLAP_WIN_PARALLELISM} is {ratio:.2}x, below the required \
                 {OVERLAP_WIN_FACTOR}x — re-bless from a run that meets the bar",
                committed_file.display()
            ))
        }
        Some(_) => {}
        None => {
            return Err(format!(
                "{}: missing {OVERLAP_WIN_ALGO} p={OVERLAP_WIN_PARALLELISM} sync/overlapped \
                 cells for the overlap-win gate",
                committed_file.display()
            ))
        }
    }

    let fresh_file = root.join(fresh_path(quick));
    let mut best: BTreeMap<CellKey, f64> = BTreeMap::new();
    let mut best_phases: BTreeMap<CellKey, PhaseSecs> = BTreeMap::new();
    let mut comparison = Comparison::default();
    let mut fresh_skew = None;
    let mut fresh_overload: Option<OverloadGate> = None;
    let mut best_serving_qps: Option<f64> = None;
    for attempt in 1..=MAX_ATTEMPTS {
        let fresh = measure_fresh(root, quick, &fresh_file)?;
        if fresh.mode != expected_mode {
            return Err(format!(
                "{}: fresh measurement ran in `{}` mode, expected `{expected_mode}` — \
                 refusing the mismatched workload",
                fresh_file.display(),
                fresh.mode
            ));
        }
        if let (Some(want), Some(got)) = (&committed.strategy, &fresh.strategy) {
            if want != got {
                return Err(format!(
                    "{}: fresh measurement ran strategy `{got}` but the committed baseline \
                     is `{want}` — refusing the mismatched configuration",
                    fresh_file.display()
                ));
            }
        }
        fold_best(&committed, &fresh, &mut best, &mut best_phases);
        // predict_qps is wall-clock like the throughput cells, so the same
        // calibration normalization and best-of-attempts retry policy apply.
        if let Some(gate) = &fresh.serving {
            let normalized = gate.predict_qps * (committed.calibration / fresh.calibration);
            if best_serving_qps.is_none_or(|current| normalized > current) {
                best_serving_qps = Some(normalized);
            }
        }
        fresh_skew = fresh.shuffle_skew_ratio();
        comparison = compare(&committed, &best, &best_phases);
        if let Some(failure) = serving_failure(committed.serving.as_ref(), best_serving_qps) {
            comparison.failures.push(failure);
        }
        // Fresh shuffle skew: deterministic, but checked per attempt so a
        // regression shows up alongside the throughput failures. Skipped
        // (with the note above) when the committed file predates the gate.
        match (committed.shuffle_skew.is_some(), fresh.shuffle_skew_ratio()) {
            (false, _) => {}
            (true, Some(ratio)) if ratio < SHUFFLE_SKEW_FACTOR => {
                comparison.failures.push(format!(
                    "shuffle skew: fresh roundrobin/keyrange ratio is only {ratio:.2}x \
                 (gate requires {SHUFFLE_SKEW_FACTOR}x)"
                ))
            }
            (true, Some(_)) => {}
            (true, None) => comparison
                .failures
                .push("shuffle skew: section missing from the fresh measurement".to_string()),
        }
        // Fresh overload gates: deterministic within-file checks, skipped
        // only when the committed file predates the section.
        match (&committed.overload, &fresh.overload) {
            (None, _) => {}
            (Some(_), Some(gate)) => comparison.failures.extend(overload_failures(gate)),
            (Some(_), None) => comparison
                .failures
                .push("overload: section missing from the fresh measurement".to_string()),
        }
        fresh_overload = fresh.overload.clone();
        if comparison.failures.is_empty() {
            break;
        }
        if attempt < MAX_ATTEMPTS {
            println!(
                "xtask bench-check: attempt {attempt}/{MAX_ATTEMPTS} regressed, retrying \
                 (best rate per cell is kept)"
            );
        }
    }

    println!(
        "xtask bench-check: {} mode vs {} (calibration-normalized)",
        expected_mode,
        committed_file.display()
    );
    for (algo, pipeline, p, committed_rate, fresh_rate) in &comparison.rows {
        println!(
            "  {algo:<10} {pipeline:<10} p={p}  committed {committed_rate:>12.0} rec/s  \
             fresh {fresh_rate:>12.0} rec/s  ({:+.1}%)",
            (fresh_rate / committed_rate - 1.0) * 100.0
        );
    }
    if let Some(ratio) = overlap_win_ratio(&best) {
        println!(
            "  overlap win: {OVERLAP_WIN_ALGO} p={OVERLAP_WIN_PARALLELISM} overlapped/sync = \
             {ratio:.2}x (required {OVERLAP_WIN_FACTOR}x)"
        );
    }
    if let Some(ratio) = fresh_skew {
        println!(
            "  shuffle skew: roundrobin/keyrange charged bytes = {ratio:.2}x \
             (required {SHUFFLE_SKEW_FACTOR}x)"
        );
    }
    if let Some(gate) = &fresh_overload {
        println!(
            "  overload: shed {:.1}% — latency approx {:.2}s vs exact {:.2}s (target {:.2}s), \
             purity delta {:.4} within bound {:.4}, digest p1 {} p4 {}",
            100.0 * gate.shed_fraction,
            gate.approx_latency_secs,
            gate.exact_latency_secs,
            gate.target_latency_secs,
            gate.purity_delta,
            gate.error_bound,
            gate.model_digest_p1,
            gate.model_digest_p4,
        );
    }
    if let (Some(gate), Some(qps)) = (&committed.serving, best_serving_qps) {
        println!(
            "  serving: {qps:.0} predict/s (normalized) vs committed {:.0} predict/s \
             (p={}, {} readers, {} epochs blessed)",
            gate.predict_qps, gate.parallelism, gate.reader_threads, gate.epochs_published
        );
    }
    for warning in &comparison.scaling_warnings {
        println!("  warning: {warning}");
    }
    for failure in &comparison.failures {
        println!("  FAIL: {failure}");
    }
    if comparison.failures.is_empty() {
        println!(
            "xtask bench-check: OK — {} cell(s) within {:.0}% of the committed baseline",
            comparison.rows.len(),
            REGRESSION_TOLERANCE * 100.0
        );
        Ok(true)
    } else {
        println!(
            "xtask bench-check: {} regression(s) after {MAX_ATTEMPTS} attempt(s); \
             if intentional, re-bless with `cargo run --release -p diststream-bench \
             --bin bench_baseline -- {}--out {}` (see DESIGN.md §9)",
            comparison.failures.len(),
            if quick { "--quick " } else { "" },
            committed_path(quick)
        );
        Ok(false)
    }
}

/// Runs one fresh `bench_baseline` measurement and parses its output file.
fn measure_fresh(root: &Path, quick: bool, out: &Path) -> Result<Baseline, String> {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root).args([
        "run",
        "--release",
        "-q",
        "-p",
        "diststream-bench",
        "--bin",
        "bench_baseline",
        "--",
    ]);
    if quick {
        cmd.arg("--quick");
    }
    cmd.arg("--out").arg(out);
    let status = cmd
        .status()
        .map_err(|err| format!("cannot spawn cargo: {err}"))?;
    if !status.success() {
        return Err(format!("bench_baseline exited with {status}"));
    }
    let contents = std::fs::read_to_string(out)
        .map_err(|err| format!("cannot read {}: {err}", out.display()))?;
    parse_baseline(&contents).map_err(|err| format!("{}: {err}", out.display()))
}

/// Parses `bench-check` arguments: `[--quick] [--root <path>]`.
pub fn parse_args(args: &[String]) -> Result<(bool, Option<PathBuf>), String> {
    let mut quick = false;
    let mut root = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--root" => match iter.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return Err("--root requires a path argument".to_string()),
            },
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok((quick, root))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn passing_gate() -> OverloadGate {
        OverloadGate {
            target_latency_secs: 1.0,
            exact_latency_secs: 7.5,
            approx_latency_secs: 0.45,
            shed_fraction: 0.62,
            error_bound: 0.021,
            purity_delta: 0.01,
            model_digest_p1: "00000000deadbeef".to_string(),
            model_digest_p4: "00000000deadbeef".to_string(),
        }
    }

    fn passing_serving() -> ServingGate {
        ServingGate {
            parallelism: 4.0,
            reader_threads: 2.0,
            predict_qps: 150_000.0,
            epochs_published: 12.0,
        }
    }

    fn baseline(mode: &str, calibration: f64, cells: &[(&str, &str, u64, f64)]) -> Baseline {
        Baseline {
            mode: mode.to_string(),
            schema: SUPPORTED_SCHEMA,
            strategy: Some("roundrobin".to_string()),
            shuffle_skew: Some((1_300_000.0, 1_000_000.0)),
            overload: Some(passing_gate()),
            serving: Some(passing_serving()),
            calibration,
            cells: cells
                .iter()
                .map(|(algo, pipeline, p, rate)| {
                    ((algo.to_string(), pipeline.to_string(), *p), *rate)
                })
                .collect(),
            phases: BTreeMap::new(),
        }
    }

    fn best_of(
        committed: &Baseline,
        fresh: &Baseline,
    ) -> (BTreeMap<CellKey, f64>, BTreeMap<CellKey, PhaseSecs>) {
        let mut best = BTreeMap::new();
        let mut best_phases = BTreeMap::new();
        fold_best(committed, fresh, &mut best, &mut best_phases);
        (best, best_phases)
    }

    fn compare_of(committed: &Baseline, fresh: &Baseline) -> Comparison {
        let (best, best_phases) = best_of(committed, fresh);
        compare(committed, &best, &best_phases)
    }

    #[test]
    fn parses_real_baseline_json() {
        let contents = r#"{
  "schema": 6,
  "mode": "default",
  "dataset": "KDD-99",
  "records": 12000,
  "rounds": 3,
  "batch_secs": 1,
  "calibration_score": 1500000000.5,
  "shuffle_skew": {"parallelism": 4, "roundrobin_bytes": 4000000, "keyrange_bytes": 3000000},
  "overload": {"batch_secs": 0.25, "capacity_per_batch": 70, "target_latency_secs": 1, "exact_latency_secs": 7.5, "approx_latency_secs": 0.45, "shed_fraction": 0.62, "error_bound": 0.021, "exact_purity": 0.97, "approx_purity": 0.96, "purity_delta": 0.01, "ssq_delta": 0.05, "measured_batches": 18, "vacuous_batches": 2, "model_digest_p1": "00000000deadbeef", "model_digest_p4": "00000000deadbeef"},
  "serving": {"parallelism": 4, "reader_threads": 2, "streaming_secs": 1.25, "predicts_total": 187500, "predict_qps_while_streaming": 150000, "epochs_published": 12, "final_epoch": 11},
  "entries": [
    {"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin", "parallelism": 1, "records": 35760, "records_per_sec": 106935.4, "assignment_secs": 0.168, "local_secs": 0.007, "local_cpu_secs": 0.007, "global_secs": 0.16, "overhead_secs": 0.005, "total_secs": 0.34, "latency_p50_secs": 0.6, "latency_p95_secs": 1.1, "latency_p99_secs": 1.4},
    {"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin", "parallelism": 16, "records": 35760, "records_per_sec": 406935.4, "assignment_secs": 0.042, "local_secs": 0.002, "local_cpu_secs": 0.007, "global_secs": 0.16, "overhead_secs": 0.005, "total_secs": 0.21, "latency_p50_secs": 0.4, "latency_p95_secs": 0.8, "latency_p99_secs": 1.0}
  ]
}
"#;
        let parsed = parse_baseline(contents).expect("valid baseline");
        assert_eq!(parsed.mode, "default");
        assert_eq!(parsed.calibration, 1_500_000_000.5);
        assert_eq!(parsed.strategy.as_deref(), Some("roundrobin"));
        assert_eq!(parsed.shuffle_skew, Some((4_000_000.0, 3_000_000.0)));
        let ratio = parsed.shuffle_skew_ratio().expect("skew ratio");
        assert!((ratio - 4.0 / 3.0).abs() < 1e-12);
        assert!(parsed.legacy_note().is_none());
        let gate = parsed.overload.as_ref().expect("overload gate");
        assert_eq!(gate.model_digest_p1, "00000000deadbeef");
        assert_eq!(gate.purity_delta, 0.01);
        assert!(overload_failures(gate).is_empty(), "{gate:?}");
        let serving = parsed.serving.as_ref().expect("serving gate");
        assert_eq!(serving.predict_qps, 150_000.0);
        assert_eq!(serving.reader_threads, 2.0);
        assert_eq!(serving.epochs_published, 12.0);
        let key = ("clustream".to_string(), "sync".to_string(), 1);
        assert_eq!(parsed.cells.get(&key), Some(&106_935.4));
        assert_eq!(parsed.phases.get(&key), Some(&[0.168, 0.007, 0.16, 0.005]));
        let key16 = ("clustream".to_string(), "sync".to_string(), 16);
        assert_eq!(parsed.cells.get(&key16), Some(&406_935.4));
    }

    #[test]
    fn legacy_schema_parses_with_explicit_skip_note() {
        // A v3 file has no strategy column and no shuffle_skew section. It
        // still parses (throughput gates run), but the strategy gate skip
        // surfaces as a note rather than a silent default.
        let contents = r#"{"schema": 3, "mode": "default", "calibration_score": 1,
            "entries": [{"algo": "clustream", "pipeline": "sync", "parallelism": 1,
                         "records_per_sec": 10.0}]}"#;
        let parsed = parse_baseline(contents).expect("legacy baseline parses");
        assert_eq!(parsed.strategy, None);
        assert_eq!(parsed.shuffle_skew, None);
        assert_eq!(parsed.shuffle_skew_ratio(), None);
        assert_eq!(parsed.overload, None);
        let note = parsed.legacy_note().expect("legacy note");
        assert!(note.contains("skipping"), "{note}");
        assert!(note.contains("shuffle_skew"), "{note}");
        assert!(note.contains("overload"), "{note}");
    }

    #[test]
    fn legacy_v4_keeps_skew_but_skips_overload_with_note() {
        // A v4 file carries the strategy column and the skew section (their
        // gates still run) but predates the overload section.
        let contents = r#"{"schema": 4, "mode": "default", "calibration_score": 1,
            "shuffle_skew": {"parallelism": 4, "roundrobin_bytes": 4, "keyrange_bytes": 3},
            "entries": [{"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin",
                         "parallelism": 1, "records_per_sec": 10.0}]}"#;
        let parsed = parse_baseline(contents).expect("v4 baseline parses");
        assert_eq!(parsed.strategy.as_deref(), Some("roundrobin"));
        assert!(parsed.shuffle_skew_ratio().is_some());
        assert_eq!(parsed.overload, None);
        let note = parsed.legacy_note().expect("legacy note");
        assert!(note.contains("overload"), "{note}");
        assert!(
            !note.contains("shuffle"),
            "v4 keeps the shuffle gate: {note}"
        );
    }

    #[test]
    fn legacy_v5_keeps_overload_but_skips_serving_with_note() {
        // A v5 file carries the skew and overload sections (their gates
        // still run) but predates the serving section and the p ∈ {8, 16}
        // matrix columns.
        let contents = r#"{"schema": 5, "mode": "default", "calibration_score": 1,
            "shuffle_skew": {"parallelism": 4, "roundrobin_bytes": 4, "keyrange_bytes": 3},
            "overload": {"target_latency_secs": 1, "exact_latency_secs": 7,
                         "approx_latency_secs": 0.4, "shed_fraction": 0.5,
                         "error_bound": 0.02, "purity_delta": 0.01,
                         "model_digest_p1": "00000000deadbeef",
                         "model_digest_p4": "00000000deadbeef"},
            "entries": [{"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin",
                         "parallelism": 1, "records_per_sec": 10.0}]}"#;
        let parsed = parse_baseline(contents).expect("v5 baseline parses");
        assert!(parsed.overload.is_some());
        assert_eq!(parsed.serving, None);
        let note = parsed.legacy_note().expect("legacy note");
        assert!(note.contains("serving"), "{note}");
        assert!(
            !note.contains("skipping the overload"),
            "v5 keeps the overload gates: {note}"
        );
    }

    #[test]
    fn schema_6_requires_serving_section_with_positive_qps() {
        let skew =
            r#""shuffle_skew": {"parallelism": 4, "roundrobin_bytes": 4, "keyrange_bytes": 3}"#;
        let overload = r#""overload": {"target_latency_secs": 1, "exact_latency_secs": 7,
            "approx_latency_secs": 0.4, "shed_fraction": 0.5, "error_bound": 0.02,
            "purity_delta": 0.01, "model_digest_p1": "00000000deadbeef",
            "model_digest_p4": "00000000deadbeef"}"#;
        let entries = r#""entries": [{"algo": "clustream", "pipeline": "sync",
            "strategy": "roundrobin", "parallelism": 1, "records_per_sec": 10.0}]"#;
        let no_serving = format!(
            r#"{{"schema": 6, "mode": "default", "calibration_score": 1, {skew},
            {overload}, {entries}}}"#
        );
        assert!(parse_baseline(&no_serving).unwrap_err().contains("serving"));
        let zero_qps = format!(
            r#"{{"schema": 6, "mode": "default", "calibration_score": 1, {skew},
            {overload},
            "serving": {{"parallelism": 4, "reader_threads": 2, "predict_qps_while_streaming": 0,
                        "epochs_published": 12}}, {entries}}}"#
        );
        assert!(parse_baseline(&zero_qps)
            .unwrap_err()
            .contains("predict_qps"));
        let no_epochs = format!(
            r#"{{"schema": 6, "mode": "default", "calibration_score": 1, {skew},
            {overload},
            "serving": {{"parallelism": 4, "reader_threads": 2, "predict_qps_while_streaming": 1000,
                        "epochs_published": 0}}, {entries}}}"#
        );
        assert!(parse_baseline(&no_epochs)
            .unwrap_err()
            .contains("never published"));
    }

    #[test]
    fn serving_gate_fails_only_beyond_tolerance() {
        let gate = passing_serving();
        // 10% down: within the 15% tolerance.
        assert_eq!(serving_failure(Some(&gate), Some(135_000.0)), None);
        // 20% down: regression.
        let failure = serving_failure(Some(&gate), Some(120_000.0)).expect("regression");
        assert!(failure.contains("predict/s"), "{failure}");
        // Missing fresh section while the committed file carries one.
        let failure = serving_failure(Some(&gate), None).expect("missing section");
        assert!(failure.contains("missing"), "{failure}");
        // Legacy committed file: no gate at all.
        assert_eq!(serving_failure(None, None), None);
        assert_eq!(serving_failure(None, Some(1.0)), None);
    }

    #[test]
    fn scaling_loss_covers_p8_and_p16_degrees() {
        let committed = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 1, 100_000.0),
                ("clustream", "sync", 16, 1_200_000.0),
            ],
        );
        // p1 improves 12x, p16 flat: scaling 12.0x -> 1.0x, rates fine.
        let fresh = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 1, 1_200_000.0),
                ("clustream", "sync", 16, 1_200_000.0),
            ],
        );
        let cmp = compare_of(&committed, &fresh);
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
        assert_eq!(cmp.scaling_warnings.len(), 1, "{:?}", cmp.scaling_warnings);
        assert!(
            cmp.scaling_warnings[0].contains("p16/p1"),
            "{:?}",
            cmp.scaling_warnings
        );
    }

    #[test]
    fn schema_5_requires_overload_section_with_hex_digests() {
        let skew =
            r#""shuffle_skew": {"parallelism": 4, "roundrobin_bytes": 4, "keyrange_bytes": 3}"#;
        let no_overload = format!(
            r#"{{"schema": 5, "mode": "default", "calibration_score": 1, {skew},
            "entries": [{{"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin",
                         "parallelism": 1, "records_per_sec": 10.0}}]}}"#
        );
        assert!(parse_baseline(&no_overload)
            .unwrap_err()
            .contains("overload"));
        // Digests must be strings — a numeric digest would lose precision
        // in the f64-only parser, so it is rejected as missing.
        let numeric_digest = format!(
            r#"{{"schema": 5, "mode": "default", "calibration_score": 1, {skew},
            "overload": {{"target_latency_secs": 1, "exact_latency_secs": 7,
                          "approx_latency_secs": 0.4, "shed_fraction": 0.5,
                          "error_bound": 0.02, "purity_delta": 0.01,
                          "model_digest_p1": 123, "model_digest_p4": 123}},
            "entries": [{{"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin",
                         "parallelism": 1, "records_per_sec": 10.0}}]}}"#
        );
        assert!(parse_baseline(&numeric_digest)
            .unwrap_err()
            .contains("model_digest_p1"));
    }

    #[test]
    fn overload_gates_catch_each_failure_mode() {
        assert!(overload_failures(&passing_gate()).is_empty());
        let fail = |mutate: fn(&mut OverloadGate), needle: &str| {
            let mut gate = passing_gate();
            mutate(&mut gate);
            let failures = overload_failures(&gate);
            assert!(
                failures.iter().any(|f| f.contains(needle)),
                "expected a failure mentioning `{needle}`, got {failures:?}"
            );
        };
        fail(|g| g.approx_latency_secs = 2.0, "above the");
        fail(|g| g.exact_latency_secs = 0.5, "not overloaded");
        fail(|g| g.shed_fraction = 0.0, "never engaged");
        fail(|g| g.purity_delta = 0.5, "exceeds the reported error bound");
        fail(
            |g| g.model_digest_p4 = "0badc0de0badc0de".to_string(),
            "replay",
        );
    }

    #[test]
    fn rejects_bad_schema_missing_pipeline_and_empty_entries() {
        let bad_schema =
            r#"{"schema": 2, "mode": "default", "calibration_score": 1, "entries": []}"#;
        assert!(parse_baseline(bad_schema).unwrap_err().contains("schema"));
        let empty = r#"{"schema": 3, "mode": "default", "calibration_score": 1, "entries": []}"#;
        assert!(parse_baseline(empty).unwrap_err().contains("no entries"));
        let no_pipeline = r#"{"schema": 3, "mode": "default", "calibration_score": 1,
            "entries": [{"algo": "clustream", "parallelism": 1, "records_per_sec": 10.0}]}"#;
        assert!(parse_baseline(no_pipeline)
            .unwrap_err()
            .contains("pipeline"));
    }

    #[test]
    fn schema_4_requires_strategy_column_and_skew_section() {
        let skew =
            r#""shuffle_skew": {"parallelism": 4, "roundrobin_bytes": 4, "keyrange_bytes": 3}"#;
        let no_skew = r#"{"schema": 4, "mode": "default", "calibration_score": 1,
            "entries": [{"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin",
                         "parallelism": 1, "records_per_sec": 10.0}]}"#;
        assert!(parse_baseline(no_skew)
            .unwrap_err()
            .contains("shuffle_skew"));
        let no_strategy = format!(
            r#"{{"schema": 4, "mode": "default", "calibration_score": 1, {skew},
            "entries": [{{"algo": "clustream", "pipeline": "sync",
                         "parallelism": 1, "records_per_sec": 10.0}}]}}"#
        );
        assert!(parse_baseline(&no_strategy)
            .unwrap_err()
            .contains("strategy"));
        let mixed = format!(
            r#"{{"schema": 4, "mode": "default", "calibration_score": 1, {skew},
            "entries": [
              {{"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin",
               "parallelism": 1, "records_per_sec": 10.0}},
              {{"algo": "clustream", "pipeline": "sync", "strategy": "keyrange",
               "parallelism": 4, "records_per_sec": 10.0}}
            ]}}"#
        );
        assert!(parse_baseline(&mixed)
            .unwrap_err()
            .contains("exactly one strategy"));
        let zero_bytes = r#"{"schema": 4, "mode": "default", "calibration_score": 1,
            "shuffle_skew": {"parallelism": 4, "roundrobin_bytes": 4, "keyrange_bytes": 0},
            "entries": [{"algo": "clustream", "pipeline": "sync", "strategy": "roundrobin",
                         "parallelism": 1, "records_per_sec": 10.0}]}"#;
        assert!(parse_baseline(zero_bytes).unwrap_err().contains("positive"));
    }

    #[test]
    fn equal_rates_pass_within_tolerance() {
        let committed = baseline("quick", 1e9, &[("clustream", "sync", 1, 100_000.0)]);
        let fresh = baseline("quick", 1e9, &[("clustream", "sync", 1, 90_000.0)]);
        let cmp = compare_of(&committed, &fresh);
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let committed = baseline("quick", 1e9, &[("clustream", "sync", 1, 100_000.0)]);
        let fresh = baseline("quick", 1e9, &[("clustream", "sync", 1, 80_000.0)]);
        let cmp = compare_of(&committed, &fresh);
        assert_eq!(cmp.failures.len(), 1);
        assert!(cmp.failures[0].contains("clustream"), "{:?}", cmp.failures);
    }

    #[test]
    fn pipelines_are_distinct_cells() {
        // A regression in the overlapped lane is caught even when the sync
        // lane at the same (algo, p) is healthy.
        let committed = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 1, 100_000.0),
                ("clustream", "overlapped", 1, 150_000.0),
            ],
        );
        let fresh = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 1, 100_000.0),
                ("clustream", "overlapped", 1, 100_000.0),
            ],
        );
        let cmp = compare_of(&committed, &fresh);
        assert_eq!(cmp.failures.len(), 1);
        assert!(cmp.failures[0].contains("overlapped"), "{:?}", cmp.failures);
    }

    #[test]
    fn calibration_ratio_normalizes_slow_machines() {
        // Half-speed machine: raw rate halves, calibration halves — no fail.
        let committed = baseline("quick", 2e9, &[("clustream", "sync", 1, 100_000.0)]);
        let fresh = baseline("quick", 1e9, &[("clustream", "sync", 1, 50_000.0)]);
        let cmp = compare_of(&committed, &fresh);
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
    }

    #[test]
    fn missing_cell_fails() {
        let committed = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 1, 100_000.0),
                ("dstream", "sync", 1, 100_000.0),
            ],
        );
        let fresh = baseline("quick", 1e9, &[("clustream", "sync", 1, 100_000.0)]);
        let cmp = compare_of(&committed, &fresh);
        assert_eq!(cmp.failures.len(), 1);
        assert!(cmp.failures[0].contains("dstream"));
    }

    #[test]
    fn best_of_retries_keeps_per_cell_maximum() {
        let committed = baseline("quick", 1e9, &[("clustream", "sync", 1, 100_000.0)]);
        let slow = baseline("quick", 1e9, &[("clustream", "sync", 1, 40_000.0)]);
        let fast = baseline("quick", 1e9, &[("clustream", "sync", 1, 99_000.0)]);
        let mut best = BTreeMap::new();
        let mut best_phases = BTreeMap::new();
        fold_best(&committed, &slow, &mut best, &mut best_phases);
        assert_eq!(compare(&committed, &best, &best_phases).failures.len(), 1);
        fold_best(&committed, &fast, &mut best, &mut best_phases);
        assert!(compare(&committed, &best, &best_phases).failures.is_empty());
    }

    #[test]
    fn regression_failures_name_the_guilty_phase() {
        let key = ("clustream".to_string(), "sync".to_string(), 1);
        let mut committed = baseline("quick", 1e9, &[("clustream", "sync", 1, 100_000.0)]);
        committed
            .phases
            .insert(key.clone(), [0.10, 0.05, 0.02, 0.01]);
        let mut fresh = baseline("quick", 1e9, &[("clustream", "sync", 1, 70_000.0)]);
        fresh.phases.insert(key.clone(), [0.10, 0.12, 0.02, 0.01]);
        let cmp = compare_of(&committed, &fresh);
        assert_eq!(cmp.failures.len(), 1, "{:?}", cmp.failures);
        assert!(
            cmp.failures[0].contains("largest phase regression: local_update"),
            "{:?}",
            cmp.failures
        );

        // Without phase columns the failure still fires, just unattributed.
        let committed = baseline("quick", 1e9, &[("clustream", "sync", 1, 100_000.0)]);
        let fresh = baseline("quick", 1e9, &[("clustream", "sync", 1, 70_000.0)]);
        let cmp = compare_of(&committed, &fresh);
        assert_eq!(cmp.failures.len(), 1);
        assert!(
            !cmp.failures[0].contains("largest phase regression"),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn overlap_win_below_factor_fails_fresh_comparison() {
        let committed = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 4, 100_000.0),
                ("clustream", "overlapped", 4, 150_000.0),
            ],
        );
        // Both cells within tolerance individually, but the ratio collapsed
        // to 1.04x < 1.25x.
        let fresh = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 4, 125_000.0),
                ("clustream", "overlapped", 4, 130_000.0),
            ],
        );
        let cmp = compare_of(&committed, &fresh);
        assert_eq!(cmp.failures.len(), 1, "{:?}", cmp.failures);
        assert!(cmp.failures[0].contains("1.25"), "{:?}", cmp.failures);

        let healthy = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 4, 100_000.0),
                ("clustream", "overlapped", 4, 140_000.0),
            ],
        );
        let cmp = compare_of(&committed, &healthy);
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
    }

    #[test]
    fn overlap_win_ratio_needs_both_pipelines() {
        let committed = baseline("quick", 1e9, &[("clustream", "sync", 4, 100_000.0)]);
        assert_eq!(overlap_win_ratio(&committed.cells), None);
        let both = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 4, 100_000.0),
                ("clustream", "overlapped", 4, 150_000.0),
            ],
        );
        assert_eq!(overlap_win_ratio(&both.cells), Some(1.5));
    }

    #[test]
    fn scaling_loss_is_reported_but_not_fatal() {
        let committed = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 1, 100_000.0),
                ("clustream", "sync", 4, 400_000.0),
            ],
        );
        // p1 improves, p4 flat: scaling 4.0x -> 1.0x, rates themselves fine.
        let fresh = baseline(
            "quick",
            1e9,
            &[
                ("clustream", "sync", 1, 400_000.0),
                ("clustream", "sync", 4, 400_000.0),
            ],
        );
        let cmp = compare_of(&committed, &fresh);
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
        assert_eq!(cmp.scaling_warnings.len(), 1);
        assert!(cmp.scaling_warnings[0].contains("scaling"));
    }

    #[test]
    fn parse_args_handles_flags() {
        let args = |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert_eq!(parse_args(&args(&[])).unwrap(), (false, None));
        assert_eq!(parse_args(&args(&["--quick"])).unwrap(), (true, None));
        let (quick, root) = parse_args(&args(&["--quick", "--root", "/x"])).unwrap();
        assert!(quick);
        assert_eq!(root, Some(PathBuf::from("/x")));
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--root"])).is_err());
    }

    #[test]
    fn output_paths_depend_on_mode() {
        assert_eq!(committed_path(false), "BENCH_BASELINE.json");
        assert_eq!(committed_path(true), "BENCH_BASELINE_QUICK.json");
        assert_eq!(fresh_path(false), "BENCH_CURRENT_DEFAULT.json");
        assert_eq!(fresh_path(true), "BENCH_CURRENT_QUICK.json");
    }
}

//! `xtask trace-analyze`: trace analytics over a telemetry journal.
//!
//! Where `check-trace` validates a journal's *structure*, this command
//! interprets its *content* via the `diststream-trace` library:
//!
//! 1. per-batch critical paths aggregated into a run-level blame table
//!    naming the dominant phase (with the reconciliation check from the
//!    structural gate re-applied — an unreconciled batch means the blame
//!    numbers cannot be trusted);
//! 2. `--baseline <journal>`: a phase-by-phase diff against another run,
//!    attributing a slowdown to the phase that grew the most;
//! 3. `--what-if p=8,16`: LPT-replay predictions of run time at
//!    hypothetical parallelism degrees, with the Amdahl serial-fraction
//!    ceiling;
//! 4. `--chrome-out <file>`: the journal re-rendered in the Chrome
//!    trace-event format for `chrome://tracing` / Perfetto;
//! 5. `--blame-out <file>`: the blame table written to a file for CI
//!    artifacts.
//!
//! A journal whose `drops` trailer records lost events fails the command:
//! every analysis here would silently under-count.

use std::path::{Path, PathBuf};

use diststream_trace::{analysis, chrome, diff, whatif, RunProfile};

/// Parsed `trace-analyze` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// The journal to analyze.
    pub journal: PathBuf,
    /// Optional baseline journal to diff against.
    pub baseline: Option<PathBuf>,
    /// Hypothetical parallelism degrees for the what-if prediction.
    pub what_if: Vec<usize>,
    /// Optional Chrome trace-event output path.
    pub chrome_out: Option<PathBuf>,
    /// Optional blame-table output path.
    pub blame_out: Option<PathBuf>,
}

/// Parses `trace-analyze` arguments:
/// `<journal> [--baseline <journal>] [--what-if p=8,16] [--chrome-out f]
/// [--blame-out f]`.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut journal = None;
    let mut baseline = None;
    let mut what_if = Vec::new();
    let mut chrome_out = None;
    let mut blame_out = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => {
                let path = iter.next().ok_or("--baseline requires a journal path")?;
                baseline = Some(PathBuf::from(path));
            }
            "--what-if" => {
                let spec = iter.next().ok_or("--what-if requires a degree list")?;
                what_if = parse_what_if(spec)?;
            }
            "--chrome-out" => {
                let path = iter.next().ok_or("--chrome-out requires a file path")?;
                chrome_out = Some(PathBuf::from(path));
            }
            "--blame-out" => {
                let path = iter.next().ok_or("--blame-out requires a file path")?;
                blame_out = Some(PathBuf::from(path));
            }
            other if other.starts_with("--") => {
                return Err(format!("unrecognized argument `{other}`"))
            }
            path if journal.is_none() => journal = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected extra argument `{extra}`")),
        }
    }
    Ok(Options {
        journal: journal.ok_or("missing journal path")?,
        baseline,
        what_if,
        chrome_out,
        blame_out,
    })
}

/// Parses a what-if degree list: `p=8,16` or `8,16`.
fn parse_what_if(spec: &str) -> Result<Vec<usize>, String> {
    let list = spec.strip_prefix("p=").unwrap_or(spec);
    let degrees: Result<Vec<usize>, String> = list
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .ok()
                .filter(|&p| p >= 1)
                .ok_or_else(|| format!("bad what-if degree `{part}` (want p=8,16 style)"))
        })
        .collect();
    let degrees = degrees?;
    if degrees.is_empty() {
        return Err("--what-if requires at least one degree".to_string());
    }
    Ok(degrees)
}

/// Loads and analyzes one journal file.
fn load(path: &Path) -> Result<(diststream_trace::Journal, RunProfile), String> {
    let journal = diststream_trace::parse_journal_file(path)
        .map_err(|err| format!("{}: {err}", path.display()))?;
    let run = analysis::analyze(&journal);
    Ok((journal, run))
}

/// Records-weighted summary of the per-batch latency digests:
/// `(records, mean, p50, p95, p99)`. `None` when no batch journaled one.
fn latency_summary(run: &RunProfile) -> Option<(f64, f64, f64, f64, f64)> {
    let mut records = 0.0;
    let mut sums = [0.0f64; 4];
    for digest in run.batches.iter().filter_map(|b| b.latency.as_ref()) {
        records += digest.records;
        for (slot, value) in sums.iter_mut().zip([
            digest.mean_secs,
            digest.p50_secs,
            digest.p95_secs,
            digest.p99_secs,
        ]) {
            *slot += value * digest.records;
        }
    }
    if records <= 0.0 {
        return None;
    }
    let [mean, p50, p95, p99] = sums.map(|s| s / records);
    Some((records, mean, p50, p95, p99))
}

/// Runs the analysis. `Ok(true)` on success, `Ok(false)` when the journal
/// is untrustworthy (dropped events or unreconciled batches).
pub fn run(opts: &Options) -> Result<bool, String> {
    let (journal, run) = load(&opts.journal)?;
    if run.batches.is_empty() {
        return Err(format!(
            "{}: no batch_summary points — was the run traced?",
            opts.journal.display()
        ));
    }

    let mut failures = Vec::new();
    if run.drops > 0 {
        failures.push(format!(
            "journal truncated: {} event(s) dropped by the bounded writer queue — every \
             number below is a lower bound",
            run.drops
        ));
    }
    for batch in &run.batches {
        if let Err((path, total)) = batch.reconcile() {
            failures.push(format!(
                "batch {}: critical path sums to {path:.6}s but recorded total is {total:.6}s \
                 (tolerance {:.0}%)",
                batch.batch,
                analysis::RECONCILE_REL_TOL * 100.0
            ));
        }
    }

    let records: f64 = run.batches.iter().map(|b| b.records).sum();
    println!(
        "xtask trace-analyze: {} — {} batch(es), {records:.0} record(s), {:.6}s recorded, \
         {:.6}s wall-side ingest",
        opts.journal.display(),
        run.batches.len(),
        run.total_secs(),
        run.ingest_secs
    );

    let blame = run.blame();
    println!();
    println!("critical-path blame table:");
    print!("{}", blame.render());

    if let Some((records, mean, p50, p95, p99)) = latency_summary(&run) {
        println!();
        println!(
            "event-time latency ({records:.0} record(s), records-weighted over per-batch \
             percentiles):"
        );
        println!("  mean {mean:.6}s  p50 {p50:.6}s  p95 {p95:.6}s  p99 {p99:.6}s");
    }

    if let Some(baseline_path) = &opts.baseline {
        let (_, baseline_run) = load(baseline_path)?;
        if baseline_run.batches.is_empty() {
            return Err(format!(
                "{}: no batch_summary points — was the baseline traced?",
                baseline_path.display()
            ));
        }
        let deltas = diff::diff_blame(&baseline_run.blame(), &blame);
        println!();
        println!("vs baseline {}:", baseline_path.display());
        print!("{}", diff::render(&deltas));
        if diff::attribute_regression(&deltas).is_none() {
            println!("no phase regressed against the baseline");
        }
    }

    if !opts.what_if.is_empty() {
        let predictions = whatif::predict(&run, &opts.what_if);
        println!();
        println!("what-if scaling prediction (LPT replay of recorded task durations):");
        print!("{}", whatif::render(&predictions, run.total_secs()));
    }

    if let Some(out) = &opts.chrome_out {
        std::fs::write(out, chrome::export(&journal))
            .map_err(|err| format!("cannot write {}: {err}", out.display()))?;
        println!();
        println!(
            "chrome trace written to {} (load in chrome://tracing)",
            out.display()
        );
    }
    if let Some(out) = &opts.blame_out {
        std::fs::write(out, blame.render())
            .map_err(|err| format!("cannot write {}: {err}", out.display()))?;
        println!("blame table written to {}", out.display());
    }

    if failures.is_empty() {
        println!();
        println!(
            "xtask trace-analyze: OK — {} batch(es) reconciled within {:.0}%",
            run.batches.len(),
            analysis::RECONCILE_REL_TOL * 100.0
        );
        Ok(true)
    } else {
        println!();
        for failure in &failures {
            println!("  FAIL: {failure}");
        }
        println!(
            "xtask trace-analyze: {} problem(s) in {}",
            failures.len(),
            opts.journal.display()
        );
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diststream_trace::parse_journal;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_handles_every_flag() {
        let opts = parse_args(&args(&[
            "run.jsonl",
            "--baseline",
            "base.jsonl",
            "--what-if",
            "p=8,16",
            "--chrome-out",
            "trace.json",
            "--blame-out",
            "blame.txt",
        ]))
        .expect("valid args");
        assert_eq!(opts.journal, PathBuf::from("run.jsonl"));
        assert_eq!(opts.baseline, Some(PathBuf::from("base.jsonl")));
        assert_eq!(opts.what_if, vec![8, 16]);
        assert_eq!(opts.chrome_out, Some(PathBuf::from("trace.json")));
        assert_eq!(opts.blame_out, Some(PathBuf::from("blame.txt")));
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["a.jsonl", "b.jsonl"])).is_err());
        assert!(parse_args(&args(&["a.jsonl", "--bogus"])).is_err());
        assert!(parse_args(&args(&["a.jsonl", "--what-if"])).is_err());
        assert!(parse_args(&args(&["a.jsonl", "--what-if", "p=0"])).is_err());
        assert!(parse_args(&args(&["a.jsonl", "--what-if", "p=x"])).is_err());
    }

    #[test]
    fn what_if_spec_accepts_both_spellings() {
        assert_eq!(parse_what_if("p=8,16").unwrap(), vec![8, 16]);
        assert_eq!(parse_what_if("4").unwrap(), vec![4]);
        assert!(parse_what_if("").is_err());
    }

    #[test]
    fn latency_summary_weights_batches_by_records() {
        let contents = "{\"ev\":\"meta\",\"version\":1,\"clock\":\"monotonic-us\"}\n\
            {\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":0,\"t_us\":1,\"batch\":0,\
             \"records\":100,\"assignment_secs\":1.0,\"local_secs\":0.0,\"global_secs\":0.0,\
             \"overhead_secs\":0.0,\"total_secs\":1.0,\"async_overlap\":0.0,\"parallelism\":1}\n\
            {\"ev\":\"point\",\"name\":\"record_latency\",\"thread\":0,\"seq\":1,\"t_us\":2,\"batch\":0,\
             \"records\":100,\"mean_secs\":1.0,\"p50_secs\":1.0,\"p95_secs\":2.0,\"p99_secs\":2.0}\n\
            {\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":2,\"t_us\":3,\"batch\":1,\
             \"records\":300,\"assignment_secs\":1.0,\"local_secs\":0.0,\"global_secs\":0.0,\
             \"overhead_secs\":0.0,\"total_secs\":1.0,\"async_overlap\":0.0,\"parallelism\":1}\n\
            {\"ev\":\"point\",\"name\":\"record_latency\",\"thread\":0,\"seq\":3,\"t_us\":4,\"batch\":1,\
             \"records\":300,\"mean_secs\":3.0,\"p50_secs\":3.0,\"p95_secs\":6.0,\"p99_secs\":6.0}";
        let run = analysis::analyze(&parse_journal(contents).expect("parses"));
        let (records, mean, p50, p95, p99) = latency_summary(&run).expect("latency present");
        assert_eq!(records, 400.0);
        // (1.0*100 + 3.0*300) / 400 = 2.5
        assert!((mean - 2.5).abs() < 1e-12);
        assert!((p50 - 2.5).abs() < 1e-12);
        assert!((p95 - 5.0).abs() < 1e-12);
        assert!((p99 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_is_none_without_digests() {
        let contents = "{\"ev\":\"meta\",\"version\":1,\"clock\":\"monotonic-us\"}\n\
            {\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":0,\"t_us\":1,\"batch\":0,\
             \"records\":100,\"assignment_secs\":1.0,\"local_secs\":0.0,\"global_secs\":0.0,\
             \"overhead_secs\":0.0,\"total_secs\":1.0,\"async_overlap\":0.0,\"parallelism\":1}";
        let run = analysis::analyze(&parse_journal(contents).expect("parses"));
        assert_eq!(latency_summary(&run), None);
    }
}

//! The determinism lint catalog.
//!
//! Each rule names a DistStream invariant, the path scope it applies to,
//! and a token-pattern matcher. Matching is lexical (see `lexer.rs` for
//! why), which errs toward flagging: e.g. `nondeterministic-collection`
//! flags any `HashMap`/`HashSet` mention in order-sensitive paths rather
//! than proving iteration, because a lookup table one refactor away from
//! being iterated is exactly how order bugs creep in. Sanctioned uses go
//! through the per-rule allowlist file (`crates/xtask/allow/<rule>.txt`)
//! or an inline `// lint:allow(<rule>)` on the offending or preceding
//! line.

use crate::lexer::{Tok, Token};

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

pub struct Rule {
    pub name: &'static str,
    /// Human-readable invariant, used in `xtask lint --explain`-style output.
    pub rationale: &'static str,
    /// Whether the rule inspects the file at this repo-relative path.
    pub applies: fn(&str) -> bool,
    /// Token matcher over non-test tokens.
    pub check: fn(&[Token]) -> Vec<Violation>,
}

/// The full catalog, in diagnostic-priority order.
pub fn catalog() -> Vec<Rule> {
    vec![
        Rule {
            name: "nondeterministic-collection",
            rationale: "merge/aggregation/offline paths must not touch HashMap/HashSet: \
                        unordered iteration breaks the order-aware guarantee (use BTreeMap \
                        or sort before iterating)",
            applies: |path| {
                path.starts_with("crates/core/src")
                    || path.starts_with("crates/algorithms/src/offline")
                    || path.starts_with("crates/quality/src")
            },
            check: check_nondeterministic_collection,
        },
        Rule {
            name: "thread-spawn",
            rationale: "all parallelism goes through TaskPool (crates/engine/src/pool.rs); \
                        ad-hoc threads bypass the deterministic claim/merge protocol",
            applies: |path| path != "crates/engine/src/pool.rs",
            check: check_thread_spawn,
        },
        Rule {
            name: "relaxed-ordering",
            rationale: "atomics that gate task scheduling or barriers must not use \
                        Ordering::Relaxed; a relaxed claim can race ahead of the data \
                        handoff it authorizes",
            applies: |_| true,
            check: check_relaxed_ordering,
        },
        Rule {
            name: "no-panic",
            rationale: "engine and core shipping code must surface failures as \
                        DistStreamError, not unwrap()/expect()/panic!: a worker panic \
                        tears down the whole mini-batch step",
            applies: |path| {
                path.starts_with("crates/engine/src") || path.starts_with("crates/core/src")
            },
            check: check_no_panic,
        },
        Rule {
            name: "wallclock-entropy",
            rationale: "wall-clock reads and RNG construction outside the driver, metrics, \
                        netcost, and telemetry-clock modules leak nondeterminism into \
                        simulated-mode replays",
            applies: |path| {
                let in_scope = path.starts_with("crates/engine/src")
                    || path.starts_with("crates/core/src")
                    || path.starts_with("crates/algorithms/src")
                    || path.starts_with("crates/datasets/src")
                    || path.starts_with("crates/telemetry/src");
                let sanctioned_module = path == "crates/engine/src/driver.rs"
                    || path == "crates/engine/src/metrics.rs"
                    || path == "crates/engine/src/netcost.rs"
                    || path == "crates/telemetry/src/clock.rs";
                in_scope && !sanctioned_module
            },
            check: check_wallclock_entropy,
        },
        Rule {
            name: "print-in-shipping",
            rationale: "engine/core/algorithms shipping code must not write to \
                        stdout/stderr with println!/eprintln!/print!/eprint!: output \
                        belongs to the bench binaries, and diagnostics go through the \
                        telemetry journal or DistStreamError",
            applies: |path| {
                path.starts_with("crates/engine/src")
                    || path.starts_with("crates/core/src")
                    || path.starts_with("crates/algorithms/src")
            },
            check: check_print_in_shipping,
        },
    ]
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match &tokens.get(i)?.tok {
        Tok::Ident(id) => Some(id),
        _ => None,
    }
}

fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i), Some(t) if t.tok == Tok::PathSep)
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(t) if t.tok == Tok::Punct(c))
}

/// Matches `first::second` at position `i`.
fn path_pair(tokens: &[Token], i: usize, first: &str, second: &str) -> bool {
    ident_at(tokens, i) == Some(first)
        && is_path_sep(tokens, i + 1)
        && ident_at(tokens, i + 2) == Some(second)
}

fn check_nondeterministic_collection(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if let Some(name @ ("HashMap" | "HashSet")) = ident_at(tokens, i) {
            out.push(Violation {
                rule: "nondeterministic-collection",
                line: token.line,
                message: format!(
                    "`{name}` in an order-sensitive path; use BTreeMap or sort before iterating"
                ),
            });
        }
    }
    out
}

fn check_thread_spawn(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if path_pair(tokens, i, "thread", "spawn") {
            out.push(Violation {
                rule: "thread-spawn",
                line: tokens[i].line,
                message: "`thread::spawn` outside TaskPool; route parallelism through \
                          crates/engine/src/pool.rs"
                    .into(),
            });
        }
        if path_pair(tokens, i, "thread", "Builder") {
            out.push(Violation {
                rule: "thread-spawn",
                line: tokens[i].line,
                message: "`thread::Builder` outside TaskPool; route parallelism through \
                          crates/engine/src/pool.rs"
                    .into(),
            });
        }
    }
    out
}

fn check_relaxed_ordering(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        // Catches `Ordering::Relaxed` and a bare imported `Relaxed`.
        if ident_at(tokens, i) == Some("Relaxed") {
            out.push(Violation {
                rule: "relaxed-ordering",
                line: token.line,
                message: "`Ordering::Relaxed` on a scheduling/barrier atomic; use SeqCst \
                          (or Acquire/Release with a written-down proof)"
                    .into(),
            });
        }
    }
    out
}

fn check_no_panic(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        // `.unwrap(` / `.expect(` — the dot guard skips unwrap_or_else
        // (distinct ident) and free functions named expect.
        if is_punct(tokens, i, '.') {
            if let Some(name @ ("unwrap" | "expect")) = ident_at(tokens, i + 1) {
                if is_punct(tokens, i + 2, '(') {
                    out.push(Violation {
                        rule: "no-panic",
                        line: tokens[i + 1].line,
                        message: format!(
                            "`.{name}()` in shipping engine/core code; return DistStreamError instead"
                        ),
                    });
                }
            }
        }
        if let Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented")) =
            ident_at(tokens, i)
        {
            if is_punct(tokens, i + 1, '!') {
                out.push(Violation {
                    rule: "no-panic",
                    line: tokens[i].line,
                    message: format!(
                        "`{name}!` in shipping engine/core code; return DistStreamError instead"
                    ),
                });
            }
        }
    }
    out
}

fn check_print_in_shipping(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        if let Some(name @ ("println" | "eprintln" | "print" | "eprint")) = ident_at(tokens, i) {
            if is_punct(tokens, i + 1, '!') {
                out.push(Violation {
                    rule: "print-in-shipping",
                    line: token.line,
                    message: format!(
                        "`{name}!` in shipping library code; emit through the telemetry \
                         journal or return the information to the caller"
                    ),
                });
            }
        }
    }
    out
}

fn check_wallclock_entropy(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        for (first, second) in [("Instant", "now"), ("SystemTime", "now")] {
            if path_pair(tokens, i, first, second) {
                out.push(Violation {
                    rule: "wallclock-entropy",
                    line: tokens[i].line,
                    message: format!(
                        "`{first}::{second}()` outside driver/metrics/netcost; wall-clock \
                         reads break simulated-mode reproducibility"
                    ),
                });
            }
        }
        if let Some(name @ ("thread_rng" | "from_entropy" | "seed_from_u64")) = ident_at(tokens, i)
        {
            // Flag constructions (`f(...)` calls), not the trait method
            // definition site in vendored code (out of scan scope anyway).
            if is_punct(tokens, i + 1, '(') {
                out.push(Violation {
                    rule: "wallclock-entropy",
                    line: tokens[i].line,
                    message: format!(
                        "RNG construction `{name}(…)` outside driver/metrics/netcost; \
                         operators must receive seeds from the driver"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};

    fn run_rule(name: &str, path: &str, source: &str) -> Vec<Violation> {
        let rule = catalog()
            .into_iter()
            .find(|r| r.name == name)
            .expect("rule exists");
        if !(rule.applies)(path) {
            return Vec::new();
        }
        (rule.check)(&strip_test_code(&lex(source)))
    }

    #[test]
    fn hashmap_flagged_only_in_scope() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); for (k, v) in &m {} }";
        let hits = run_rule(
            "nondeterministic-collection",
            "crates/core/src/global.rs",
            src,
        );
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].line, 1);
        let out_of_scope = run_rule(
            "nondeterministic-collection",
            "crates/engine/src/partition.rs",
            src,
        );
        assert!(out_of_scope.is_empty());
    }

    #[test]
    fn thread_spawn_flagged_except_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let hits = run_rule("thread-spawn", "crates/core/src/parallel.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(run_rule("thread-spawn", "crates/engine/src/pool.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { std::thread::spawn(|| {}); }\n}";
        assert!(run_rule("thread-spawn", "crates/core/src/parallel.rs", src).is_empty());
    }

    #[test]
    fn relaxed_ordering_flagged() {
        let src = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }";
        let hits = run_rule("relaxed-ordering", "crates/engine/src/pool.rs", src);
        assert_eq!(hits.len(), 1);
        let seqcst = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::SeqCst); }";
        assert!(run_rule("relaxed-ordering", "crates/engine/src/pool.rs", seqcst).is_empty());
    }

    #[test]
    fn no_panic_flags_each_form() {
        let src = "fn f(x: Option<u32>) -> u32 {\n let a = x.unwrap();\n let b = x.expect(\"msg\");\n panic!(\"boom\");\n unreachable!()\n}";
        let hits = run_rule("no-panic", "crates/engine/src/codec.rs", src);
        let lines: Vec<u32> = hits.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5]);
        // Out of scope: algorithms may use expect.
        assert!(run_rule("no-panic", "crates/algorithms/src/cf.rs", src).is_empty());
    }

    #[test]
    fn no_panic_ignores_unwrap_or_variants() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default() }";
        assert!(run_rule("no-panic", "crates/engine/src/codec.rs", src).is_empty());
    }

    #[test]
    fn wallclock_flagged_outside_sanctioned_modules() {
        let src = "fn f() { let t = Instant::now(); let r = StdRng::seed_from_u64(7); }";
        let hits = run_rule("wallclock-entropy", "crates/core/src/global.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(run_rule("wallclock-entropy", "crates/engine/src/driver.rs", src).is_empty());
        assert!(run_rule("wallclock-entropy", "crates/engine/src/netcost.rs", src).is_empty());
        assert!(run_rule("wallclock-entropy", "crates/quality/src/cmm.rs", src).is_empty());
    }

    #[test]
    fn wallclock_covers_telemetry_except_clock() {
        let src = "fn f() { let t = Instant::now(); }";
        let hits = run_rule("wallclock-entropy", "crates/telemetry/src/span.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(run_rule("wallclock-entropy", "crates/telemetry/src/clock.rs", src).is_empty());
    }

    #[test]
    fn print_flagged_in_shipping_library_code() {
        let src = "fn f() {\n println!(\"x\");\n eprintln!(\"y\");\n print!(\"z\");\n}";
        let hits = run_rule("print-in-shipping", "crates/engine/src/driver.rs", src);
        let lines: Vec<u32> = hits.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3, 4]);
        // Bench binaries and telemetry are out of scope: printing is their job.
        assert!(run_rule("print-in-shipping", "crates/bench/src/report.rs", src).is_empty());
        assert!(run_rule("print-in-shipping", "crates/telemetry/src/journal.rs", src).is_empty());
    }

    #[test]
    fn print_in_tests_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { println!(\"debug\"); }\n}";
        assert!(run_rule("print-in-shipping", "crates/core/src/pipeline.rs", src).is_empty());
    }
}

//! `cargo xtask analyze` — flow-aware workspace static analysis.
//!
//! Runs the legacy lint catalog (`rules.rs`) *and* five flow-aware rule
//! families over one shared walk/lex pass (`workspace.rs`), emits human
//! diagnostics plus SARIF 2.1 (`sarif.rs`), and gates the panic-path and
//! hot-path-indexing audits on a committed baseline so CI fails only on
//! *new* findings while the baseline ratchets down.
//!
//! The flow-aware rules (see DESIGN.md §7 for the full catalog):
//!
//! * `determinism-dataflow` — a `HashMap`/`HashSet` binding iterated into
//!   an ordered sink (`push`/`insert` into another collection) without a
//!   post-loop `sort` on the sink.
//! * `panic-path` — `unwrap`/`expect`/`panic!`-family in shipping
//!   core/engine/algorithms/telemetry code; baseline-gated, honors
//!   `lint:allow(no-panic)` as an alias.
//! * `index-in-hot-path` — `x[i]` indexing in per-record paths
//!   (core/algorithms); baseline-gated.
//! * `telemetry-names` — every `span!`/`counter`/`gauge`/`histogram`/
//!   `emit_point` name must resolve against the catalog in
//!   `crates/telemetry/src/names.rs` (string literals by value with
//!   `{label}` suffixes stripped, `names::CONST` paths by const name);
//!   catalog entries referenced nowhere are dead; the trace nesting rules
//!   in `trace_check.rs` must compare against catalog'd names.
//! * `guard-across-boundary` — a lock guard (`lock()`/`read()`/`write()`)
//!   still live at a `send`/`spawn`/`catch_unwind` boundary call.
//! * `ignored-result` — a checkpoint/journal write (`persist`,
//!   `write_atomic`, `write_manifest`, `set_journal_file`) whose `Result`
//!   is dropped on the floor as a bare statement.
//! * `unsafe-without-safety-comment` — an `unsafe` block or fn without a
//!   `// SAFETY:` comment on a preceding line.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::lexer::{Tok, Token};
use crate::parser;
use crate::rules;
use crate::sarif;
use crate::workspace::{self, SourceFile};

/// A diagnostic from any rule (legacy or flow-aware), keyed for baseline
/// grouping and SARIF emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// Parsed options for the `analyze` subcommand.
pub struct Options {
    pub sarif_out: Option<std::path::PathBuf>,
    pub update_baseline: bool,
}

/// Repo-relative path of the committed baseline file.
pub const BASELINE_PATH: &str = "crates/xtask/analyze-baseline.txt";

/// Rules whose findings are grandfathered per (rule, file) by the
/// baseline: CI fails only when a file's count *grows*.
const BASELINE_GATED: [&str; 2] = ["panic-path", "index-in-hot-path"];

/// The analyze outcome: what to print, what to gate on.
pub struct Report {
    /// Findings that fail the run (not baselined, not allowed).
    pub active: Vec<Finding>,
    /// Baseline-suppressed count per (rule, path).
    pub baselined: BTreeMap<(String, String), usize>,
    /// (rule, path, baseline, current) where current < baseline: the
    /// baseline can ratchet down.
    pub ratchet: Vec<(String, String, usize, usize)>,
    pub files_scanned: usize,
    pub rules_run: usize,
}

/// Runs the full analysis over the workspace at `root`.
pub fn run(root: &Path, opts: &Options) -> Result<Report, String> {
    let files = workspace::load(root)?;
    let catalog = load_name_catalog(&files)?;

    let mut findings: Vec<Finding> = Vec::new();

    // Legacy lint catalog, same allow semantics as `xtask lint`, sharing
    // this pass's walk and lex.
    let lint_catalog = rules::catalog();
    for rule in &lint_catalog {
        let allowlist = workspace::load_allowlist(root, rule.name);
        for file in &files {
            if !(rule.applies)(&file.rel) || allowlist.contains(&file.rel) {
                continue;
            }
            for v in (rule.check)(&file.tokens) {
                if !file.allows(rule.name, v.line) {
                    findings.push(Finding {
                        rule: v.rule.to_string(),
                        path: file.rel.clone(),
                        line: v.line,
                        message: v.message,
                    });
                }
            }
        }
    }

    // Flow-aware rules.
    let mut used_names: BTreeSet<String> = BTreeSet::new();
    for file in &files {
        check_panic_path(file, &mut findings);
        check_index_in_hot_path(file, &mut findings);
        check_determinism_dataflow(file, &mut findings);
        check_guard_across_boundary(file, &mut findings);
        check_ignored_result(file, &mut findings);
        check_unsafe_safety_comment(file, &mut findings);
        check_telemetry_names(file, &catalog, &mut used_names, &mut findings);
    }
    check_dead_names(&files, &catalog, &used_names, &mut findings);

    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });

    // Baseline gating.
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &findings {
        if BASELINE_GATED.contains(&f.rule.as_str()) {
            *counts.entry((f.rule.clone(), f.path.clone())).or_insert(0) += 1;
        }
    }
    let baseline_file = root.join(BASELINE_PATH);
    if opts.update_baseline {
        std::fs::write(&baseline_file, render_baseline(&counts))
            .map_err(|err| format!("cannot write {}: {err}", baseline_file.display()))?;
    }
    let baseline = load_baseline(&baseline_file)?;

    let mut active = Vec::new();
    let mut baselined: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut over: BTreeSet<(String, String)> = BTreeSet::new();
    for ((rule, path), &current) in &counts {
        let allowed = baseline
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if current > allowed {
            over.insert((rule.clone(), path.clone()));
        } else {
            baselined.insert((rule.clone(), path.clone()), current);
        }
    }
    let mut ratchet = Vec::new();
    for ((rule, path), &allowed) in &baseline {
        let current = counts
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if current < allowed {
            ratchet.push((rule.clone(), path.clone(), allowed, current));
        }
    }
    for f in findings {
        if BASELINE_GATED.contains(&f.rule.as_str())
            && !over.contains(&(f.rule.clone(), f.path.clone()))
        {
            continue; // within baseline budget
        }
        active.push(f);
    }

    Ok(Report {
        active,
        baselined,
        ratchet,
        files_scanned: files.len(),
        rules_run: lint_catalog.len() + 7,
    })
}

/// Writes the SARIF log for a report.
pub fn write_sarif(report: &Report, out: &Path) -> Result<(), String> {
    let text = sarif::to_sarif(&report.active);
    std::fs::write(out, text).map_err(|err| format!("cannot write {}: {err}", out.display()))
}

// ---------------------------------------------------------------------------
// Baseline file

fn render_baseline(counts: &BTreeMap<(String, String), usize>) -> String {
    let mut out = String::from(
        "# xtask analyze baseline — grandfathered finding counts per (rule, file).\n\
         # CI fails only when a file's count grows; shrink freely and regenerate\n\
         # with: cargo run -p xtask -- analyze --update-baseline\n",
    );
    for ((rule, path), count) in counts {
        out.push_str(&format!("{rule}\t{path}\t{count}\n"));
    }
    out
}

fn load_baseline(path: &Path) -> Result<BTreeMap<(String, String), usize>, String> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Ok(BTreeMap::new()); // no baseline: everything is new
    };
    let mut out = BTreeMap::new();
    for (idx, line) in contents.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{}:{}: expected `rule<TAB>path<TAB>count`",
                path.display(),
                idx + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{}:{}: bad count `{count}`", path.display(), idx + 1))?;
        out.insert((rule.to_string(), file.to_string()), count);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Token helpers

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match &tokens.get(i)?.tok {
        Tok::Ident(id) => Some(id),
        _ => None,
    }
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(t) if t.tok == Tok::Punct(c))
}

fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i), Some(t) if t.tok == Tok::PathSep)
}

fn str_at(tokens: &[Token], i: usize) -> Option<&str> {
    match &tokens.get(i)?.tok {
        Tok::Str(s) => Some(s),
        _ => None,
    }
}

/// Index just past the `)` matching the `(` at `open`.
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        match token.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

// ---------------------------------------------------------------------------
// panic-path

fn panic_path_scope(path: &str) -> bool {
    path.starts_with("crates/core/src")
        || path.starts_with("crates/engine/src")
        || path.starts_with("crates/algorithms/src")
        || path.starts_with("crates/telemetry/src")
}

pub(crate) fn check_panic_path(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !panic_path_scope(&file.rel) {
        return;
    }
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        let hit = if is_punct(tokens, i, '.') {
            match ident_at(tokens, i + 1) {
                Some(name @ ("unwrap" | "expect")) if is_punct(tokens, i + 2, '(') => Some((
                    tokens[i + 1].line,
                    format!("`.{name}()` on a shipping path; return a typed DistStreamError"),
                )),
                _ => None,
            }
        } else {
            match ident_at(tokens, i) {
                Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                    if is_punct(tokens, i + 1, '!') =>
                {
                    Some((
                        tokens[i].line,
                        format!("`{name}!` on a shipping path; return a typed DistStreamError"),
                    ))
                }
                _ => None,
            }
        };
        if let Some((line, message)) = hit {
            // `lint:allow(no-panic)` is honored as an alias so existing
            // escapes keep working under the stricter audit.
            if !file.allows("panic-path", line) && !file.allows("no-panic", line) {
                findings.push(Finding {
                    rule: "panic-path".into(),
                    path: file.rel.clone(),
                    line,
                    message,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// index-in-hot-path

fn hot_path_scope(path: &str) -> bool {
    path.starts_with("crates/core/src") || path.starts_with("crates/algorithms/src")
}

pub(crate) fn check_index_in_hot_path(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !hot_path_scope(&file.rel) {
        return;
    }
    let tokens = &file.tokens;
    for i in 1..tokens.len() {
        if !is_punct(tokens, i, '[') {
            continue;
        }
        // Indexing: `[` after an ident, `)`, or `]`. Type positions
        // (`: [u8; 4]`), array literals (`= [`), attributes (`#[`), and
        // macro invocations (`vec![`) all follow punctuation instead.
        let is_index = matches!(
            &tokens[i - 1].tok,
            Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']')
        );
        if !is_index {
            continue;
        }
        let line = tokens[i].line;
        if !file.allows("index-in-hot-path", line) {
            findings.push(Finding {
                rule: "index-in-hot-path".into(),
                path: file.rel.clone(),
                line,
                message: "`x[i]` indexing on a per-record path can panic on a bad index; \
                          prefer `get()` with a typed error or an iterator"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// determinism-dataflow

pub(crate) fn check_determinism_dataflow(file: &SourceFile, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for func in parser::functions(tokens) {
        let body = &tokens[func.body_start..=func.body_end.min(tokens.len() - 1)];
        // Bindings are collected over the whole item span so `map:
        // HashMap<…>` parameters in the signature count too.
        let item = &tokens[func.start..=func.body_end.min(tokens.len() - 1)];
        let unordered = unordered_bindings(item);
        if unordered.is_empty() {
            continue;
        }
        // Find `for … in <expr over unordered var>` loops.
        let mut i = 0;
        while i < body.len() {
            if ident_at(body, i) != Some("for") {
                i += 1;
                continue;
            }
            // Scan the loop header up to its `{` for an unordered var.
            let mut j = i + 1;
            let mut header_var: Option<&str> = None;
            let mut saw_in = false;
            while j < body.len() && !is_punct(body, j, '{') {
                if ident_at(body, j) == Some("in") {
                    saw_in = true;
                }
                if saw_in {
                    if let Some(id) = ident_at(body, j) {
                        if unordered.contains(id) {
                            header_var = Some(id);
                        }
                    }
                }
                j += 1;
            }
            let Some(var) = header_var else {
                i = j + 1;
                continue;
            };
            if j >= body.len() {
                break;
            }
            let loop_end = parser::match_brace(body, j);
            // Ordered sinks fed inside the loop body.
            let mut sinks: BTreeSet<String> = BTreeSet::new();
            let mut k = j;
            while k < loop_end {
                if is_punct(body, k + 1, '.')
                    && matches!(ident_at(body, k + 2), Some("push" | "extend"))
                    && is_punct(body, k + 3, '(')
                {
                    if let Some(sink) = ident_at(body, k) {
                        sinks.insert(sink.to_string());
                    }
                }
                k += 1;
            }
            // A sink is protected if it is sorted after the loop.
            let mut unprotected: Vec<String> = Vec::new();
            for sink in sinks {
                let mut sorted = false;
                let mut m = loop_end;
                while m + 2 < body.len() {
                    if ident_at(body, m) == Some(sink.as_str())
                        && is_punct(body, m + 1, '.')
                        && ident_at(body, m + 2).is_some_and(|id| id.starts_with("sort"))
                    {
                        sorted = true;
                        break;
                    }
                    m += 1;
                }
                if !sorted {
                    unprotected.push(sink);
                }
            }
            let line = body[i].line;
            if !unprotected.is_empty() && !file.allows("determinism-dataflow", line) {
                findings.push(Finding {
                    rule: "determinism-dataflow".into(),
                    path: file.rel.clone(),
                    line,
                    message: format!(
                        "iterating unordered `{var}` into `{}` without a post-loop sort; \
                         hash iteration order leaks into an ordered output",
                        unprotected.join("`, `")
                    ),
                });
            }
            i = j + 1; // descend into the loop body for nested loops
        }
    }
}

/// Variable names bound to `HashMap`/`HashSet` in a token slice: matches
/// `let [mut] NAME` bindings whose initializer or type annotation mentions
/// either, plus `NAME: HashMap<…>` parameter/field positions.
fn unordered_bindings(body: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < body.len() {
        if ident_at(body, i) == Some("let") {
            let mut j = i + 1;
            if ident_at(body, j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident_at(body, j) {
                // Statement extent: to the terminating `;` at depth 0.
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut unordered = false;
                while k < body.len() {
                    match &body[k].tok {
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                        Tok::Punct(';') if depth <= 0 => break,
                        Tok::Ident(id) if id == "HashMap" || id == "HashSet" => unordered = true,
                        _ => {}
                    }
                    k += 1;
                }
                if unordered {
                    out.insert(name.to_string());
                }
                i = k;
                continue;
            }
        }
        // `name: HashMap<…>` / `name: &mut HashSet<…>` (fn parameters
        // reaching the body's rules). Skip reference/mut sigils between
        // the colon and the type name.
        if is_punct(body, i + 1, ':') {
            let mut j = i + 2;
            while is_punct(body, j, '&') || ident_at(body, j) == Some("mut") {
                j += 1;
            }
            if matches!(ident_at(body, j), Some("HashMap" | "HashSet")) {
                if let Some(name) = ident_at(body, i) {
                    out.insert(name.to_string());
                }
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// guard-across-boundary

pub(crate) fn check_guard_across_boundary(file: &SourceFile, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for func in parser::functions(tokens) {
        let body = &tokens[func.body_start..=func.body_end.min(tokens.len() - 1)];
        let mut i = 0;
        while i < body.len() {
            // `let NAME = … .lock()/.read()/.write() …;`
            if ident_at(body, i) != Some("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if ident_at(body, j) == Some("mut") {
                j += 1;
            }
            let Some(name) = ident_at(body, j) else {
                i += 1;
                continue;
            };
            // Bindings named `_guard`-style still hold the lock; `_` alone
            // drops immediately and is lexed as a plain ident we skip.
            if name == "_" {
                i += 1;
                continue;
            }
            let mut k = j + 1;
            let mut depth = 0i32;
            let mut is_guard = false;
            while k < body.len() {
                match &body[k].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                    Tok::Punct(';') if depth <= 0 => break,
                    // Depth 0 only: a `.lock()` inside a nested block or a
                    // helper call's arguments does not make this binding
                    // the guard.
                    Tok::Ident(id)
                        if depth == 0
                            && (id == "lock" || id == "read" || id == "write")
                            && is_punct(body, k - 1, '.')
                            && is_punct(body, k + 1, '(') =>
                    {
                        is_guard = true;
                    }
                    _ => {}
                }
                k += 1;
            }
            if !is_guard {
                i = k;
                continue;
            }
            let name = name.to_string();
            // Live range: from the binding's `;` to the close of the
            // enclosing block (brace depth going negative), or an explicit
            // `drop(name)`.
            let mut m = k;
            let mut rel_depth = 0i32;
            while m < body.len() {
                match &body[m].tok {
                    Tok::Punct('{') => rel_depth += 1,
                    Tok::Punct('}') => {
                        rel_depth -= 1;
                        if rel_depth < 0 {
                            break; // enclosing block closed; guard dropped
                        }
                    }
                    Tok::Ident(id)
                        if id == "drop"
                            && is_punct(body, m + 1, '(')
                            && ident_at(body, m + 2) == Some(name.as_str()) =>
                    {
                        break;
                    }
                    Tok::Ident(id)
                        if (id == "send" || id == "spawn" || id == "catch_unwind")
                            && is_punct(body, m + 1, '(') =>
                    {
                        let line = body[m].line;
                        if !file.allows("guard-across-boundary", line) {
                            findings.push(Finding {
                                rule: "guard-across-boundary".into(),
                                path: file.rel.clone(),
                                line,
                                message: format!(
                                    "lock guard `{name}` is still live at this `{id}` \
                                     boundary; drop the guard before crossing into \
                                     another thread's schedule"
                                ),
                            });
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            i = k + 1;
        }
    }
}

// ---------------------------------------------------------------------------
// ignored-result

/// Fallible checkpoint/journal write methods whose `Result` must not be
/// dropped: `CheckpointStore::persist` and the durable-store internals,
/// plus the telemetry journal sink installer.
const MUST_USE_WRITES: [&str; 4] = [
    "persist",
    "write_atomic",
    "write_manifest",
    "set_journal_file",
];

pub(crate) fn check_ignored_result(file: &SourceFile, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 1..tokens.len() {
        let Some(method) = ident_at(tokens, i) else {
            continue;
        };
        if !MUST_USE_WRITES.contains(&method)
            || !is_punct(tokens, i - 1, '.')
            || !is_punct(tokens, i + 1, '(')
        {
            continue;
        }
        let after = match_paren(tokens, i + 1);
        // Consumed: `?`, a chained method, `)`/`,` inside a larger
        // expression — anything but a bare `;`.
        if !is_punct(tokens, after, ';') {
            continue;
        }
        // Walk back to the statement start; a `let`, `=`, `return`, or
        // `match` prefix means the value is consumed.
        let mut consumed = false;
        let mut depth = 0i32;
        let mut j = i - 1;
        while j > 0 {
            match &tokens[j].tok {
                Tok::Punct(')') | Tok::Punct(']') => depth += 1,
                Tok::Punct('(') | Tok::Punct('[') => depth -= 1,
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if depth == 0 => break,
                Tok::Punct('=') if depth == 0 => consumed = true,
                Tok::Ident(id)
                    if depth == 0 && (id == "let" || id == "return" || id == "match") =>
                {
                    consumed = true;
                }
                _ => {}
            }
            j -= 1;
        }
        let line = tokens[i].line;
        if !consumed && !file.allows("ignored-result", line) {
            findings.push(Finding {
                rule: "ignored-result".into(),
                path: file.rel.clone(),
                line,
                message: format!(
                    "`.{method}()` returns a Result that is silently dropped; a failed \
                     checkpoint/journal write must surface (`?` it or handle the error)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// unsafe-without-safety-comment

pub(crate) fn check_unsafe_safety_comment(file: &SourceFile, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = file.source.lines().collect();
    for (i, token) in file.tokens.iter().enumerate() {
        if ident_at(&file.tokens, i) != Some("unsafe") {
            continue;
        }
        let line = token.line;
        // Look for `// SAFETY:` on the same line or up to three lines above
        // (attributes and signatures may sit between comment and keyword).
        let from = line.saturating_sub(4).max(1);
        let documented = (from..=line)
            .filter_map(|l| lines.get(l as usize - 1))
            .any(|text| text.contains("// SAFETY:"));
        if !documented && !file.allows("unsafe-without-safety-comment", line) {
            findings.push(Finding {
                rule: "unsafe-without-safety-comment".into(),
                path: file.rel.clone(),
                line,
                message: "`unsafe` without a `// SAFETY:` comment stating the invariant \
                          that makes it sound"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// telemetry-names

/// One catalog entry from `crates/telemetry/src/names.rs`.
#[derive(Debug, Clone)]
pub struct NameDef {
    pub const_name: String,
    pub value: String,
    pub line: u32,
    pub kind: NameKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameKind {
    Span,
    Point,
    Metric,
}

pub const NAMES_PATH: &str = "crates/telemetry/src/names.rs";

/// Parses the name catalog out of the already-lexed `names.rs`:
/// `pub const KIND_NAME: &str = "value";` items.
fn load_name_catalog(files: &[SourceFile]) -> Result<Vec<NameDef>, String> {
    let names = files
        .iter()
        .find(|f| f.rel == NAMES_PATH)
        .ok_or_else(|| format!("{NAMES_PATH} not found; the telemetry name catalog is gone"))?;
    let tokens = &names.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if ident_at(tokens, i) != Some("const") {
            continue;
        }
        let Some(const_name) = ident_at(tokens, i + 1) else {
            continue;
        };
        let kind = if const_name.starts_with("SPAN_") {
            NameKind::Span
        } else if const_name.starts_with("POINT_") {
            NameKind::Point
        } else if const_name.starts_with("METRIC_") {
            NameKind::Metric
        } else {
            continue;
        };
        // `: &str = "value"` — scan a few tokens ahead for the Str.
        let value = (i + 2..i + 8).find_map(|j| str_at(tokens, j));
        let Some(value) = value else { continue };
        out.push(NameDef {
            const_name: const_name.to_string(),
            value: value.to_string(),
            line: tokens[i + 1].line,
            kind,
        });
    }
    if out.is_empty() {
        return Err(format!(
            "{NAMES_PATH} defines no SPAN_/POINT_/METRIC_ consts"
        ));
    }
    Ok(out)
}

/// The metric base name: everything before the first `{` (label blocks in
/// `format!` sources appear as `{{label=…` which renders to `{label=…`).
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

fn catalog_has(catalog: &[NameDef], kind: NameKind, value: &str) -> bool {
    catalog
        .iter()
        .any(|def| def.kind == kind && def.value == base_name(value))
}

pub(crate) fn check_telemetry_names(
    file: &SourceFile,
    catalog: &[NameDef],
    used_names: &mut BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let tokens = &file.tokens;
    if file.rel.starts_with("crates/xtask/src") {
        check_trace_rule_names(file, catalog, findings);
        return;
    }
    for i in 0..tokens.len() {
        let Some(callee) = ident_at(tokens, i) else {
            continue;
        };
        let (kind, arg_start) = match callee {
            "span" if is_punct(tokens, i + 1, '!') && is_punct(tokens, i + 2, '(') => {
                (NameKind::Span, i + 3)
            }
            "counter" | "gauge" | "histogram" if is_punct(tokens, i + 1, '(') => {
                (NameKind::Metric, i + 2)
            }
            "emit_point" if is_punct(tokens, i + 1, '(') => (NameKind::Point, i + 2),
            _ => continue,
        };
        // Skip definitions (`fn counter(…)`) and `use` items.
        if matches!(ident_at(tokens, i.wrapping_sub(1)), Some("fn" | "use")) {
            continue;
        }
        // First argument: scan to the end of the call's argument list,
        // collecting the first string literal and any `names::CONST` path.
        // A const path wins over a literal — the format-with-labels idiom
        // (`format!("{}{{kind=…}}", names::METRIC_X)`) puts the template
        // literal first but resolves through the const.
        let mut j = arg_start;
        let mut depth = 0i32;
        let mut literal: Option<String> = None;
        let mut const_path: Option<String> = None;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') if depth == 0 => break,
                Tok::Punct(')') => depth -= 1,
                Tok::Punct(',') if depth == 0 => break,
                Tok::Str(s) if literal.is_none() => literal = Some(s.clone()),
                Tok::Ident(id)
                    if id == "names" && is_path_sep(tokens, j + 1) && const_path.is_none() =>
                {
                    if let Some(name) = ident_at(tokens, j + 2) {
                        const_path = Some(name.to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let resolved: Option<Result<String, String>> = if let Some(const_name) = const_path {
            used_names.insert(const_name.clone());
            match catalog.iter().find(|d| d.const_name == const_name) {
                Some(def) if def.kind != kind => Some(Err(format!(
                    "`names::{const_name}` is a {:?} name used as a {kind:?} name",
                    def.kind
                ))),
                Some(_) => None, // resolves by construction
                None => Some(Err(format!(
                    "`names::{const_name}` does not exist in {NAMES_PATH}"
                ))),
            }
        } else {
            literal.map(Ok)
        };
        let line = tokens[i].line;
        match resolved {
            Some(Ok(literal)) => {
                used_names.insert(base_name(&literal).to_string());
                if !catalog_has(catalog, kind, &literal) && !file.allows("telemetry-names", line) {
                    findings.push(Finding {
                        rule: "telemetry-names".into(),
                        path: file.rel.clone(),
                        line,
                        message: format!(
                            "{kind:?} name \"{}\" does not resolve against {NAMES_PATH}; \
                             add it to the catalog or fix the typo",
                            base_name(&literal)
                        ),
                    });
                }
            }
            Some(Err(message)) if !file.allows("telemetry-names", line) => {
                findings.push(Finding {
                    rule: "telemetry-names".into(),
                    path: file.rel.clone(),
                    line,
                    message,
                });
            }
            Some(Err(_)) | None => {}
        }
    }
}

/// The trace validator hardcodes span names in its nesting rules
/// (`name == "prefetch"`-style comparisons). Those literals must resolve
/// against the catalog, or the validator silently stops checking the
/// nesting it was written for when a span is renamed.
pub(crate) fn check_trace_rule_names(
    file: &SourceFile,
    catalog: &[NameDef],
    findings: &mut Vec<Finding>,
) {
    if !file.rel.ends_with("trace_check.rs") {
        return;
    }
    let tokens = &file.tokens;
    for i in 2..tokens.len() {
        let Some(name) = str_at(tokens, i) else {
            continue;
        };
        // `name == "…"` / `n == "…"` comparisons only — the validator's
        // span-name variables. Event kinds (`ev == "open"`), error text,
        // and JSON keys are out of scope.
        if !(is_punct(tokens, i - 1, '=') && is_punct(tokens, i - 2, '=')) {
            continue;
        }
        if !matches!(ident_at(tokens, i - 3), Some("name" | "n")) {
            continue;
        }
        if !name.chars().all(|c| c.is_ascii_lowercase() || c == '_') || name.is_empty() {
            continue;
        }
        let known = catalog
            .iter()
            .any(|def| matches!(def.kind, NameKind::Span | NameKind::Point) && def.value == name);
        let line = tokens[i].line;
        if !known && !file.allows("telemetry-names", line) {
            findings.push(Finding {
                rule: "telemetry-names".into(),
                path: file.rel.clone(),
                line,
                message: format!(
                    "trace nesting rule compares against \"{name}\", which is not a \
                     span/point name in {NAMES_PATH}; the check would never fire"
                ),
            });
        }
    }
}

/// A catalog entry no shipping or test code mentions (by const name or by
/// literal value at a telemetry call) is dead: it either outlived its call
/// sites or was added for a metric that never shipped.
pub(crate) fn check_dead_names(
    files: &[SourceFile],
    catalog: &[NameDef],
    used_names: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let names_file = files.iter().find(|f| f.rel == NAMES_PATH);
    for def in catalog {
        let used = used_names.contains(&def.const_name)
            || used_names.contains(&def.value)
            || files.iter().any(|f| {
                f.rel != NAMES_PATH
                    && !f.rel.starts_with("crates/xtask/src")
                    && f.source.contains(&def.const_name)
            });
        if used {
            continue;
        }
        if let Some(nf) = names_file {
            if nf.allows("telemetry-names", def.line) {
                continue;
            }
        }
        findings.push(Finding {
            rule: "telemetry-names".into(),
            path: NAMES_PATH.into(),
            line: def.line,
            message: format!(
                "`{}` (\"{}\") is referenced nowhere outside the catalog; delete the \
                 dead name or instrument the site it was written for",
                def.const_name, def.value
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{inline_allows, lex, strip_test_code};

    fn file(rel: &str, source: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            source: source.to_string(),
            tokens: strip_test_code(&lex(source)),
            allows: inline_allows(source),
        }
    }

    fn catalog() -> Vec<NameDef> {
        vec![
            NameDef {
                const_name: "SPAN_BATCH".into(),
                value: "batch".into(),
                line: 1,
                kind: NameKind::Span,
            },
            NameDef {
                const_name: "METRIC_BATCHES_TOTAL".into(),
                value: "diststream_batches_total".into(),
                line: 2,
                kind: NameKind::Metric,
            },
            NameDef {
                const_name: "POINT_BATCH_SUMMARY".into(),
                value: "batch_summary".into(),
                line: 3,
                kind: NameKind::Point,
            },
        ]
    }

    #[test]
    fn determinism_dataflow_flags_unsorted_sink() {
        let src = r#"
            fn collect(map: &HashMap<u64, f64>) -> Vec<u64> {
                let mut out = Vec::new();
                for (k, _) in map {
                    out.push(*k);
                }
                out
            }
        "#;
        let f = file("crates/engine/src/x.rs", src);
        let mut findings = Vec::new();
        check_determinism_dataflow(&f, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`map`"));
        assert!(findings[0].message.contains("`out`"));
    }

    #[test]
    fn determinism_dataflow_accepts_post_loop_sort() {
        let src = r#"
            fn collect(map: &HashMap<u64, f64>) -> Vec<u64> {
                let mut out = Vec::new();
                for (k, _) in map.iter() {
                    out.push(*k);
                }
                out.sort_unstable();
                out
            }
        "#;
        let f = file("crates/engine/src/x.rs", src);
        let mut findings = Vec::new();
        check_determinism_dataflow(&f, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn determinism_dataflow_tracks_let_bindings() {
        let src = r#"
            fn f() -> Vec<u64> {
                let mut seen = HashSet::new();
                seen.insert(1);
                let mut out = Vec::new();
                for v in &seen { out.push(*v); }
                out
            }
        "#;
        let f = file("crates/engine/src/x.rs", src);
        let mut findings = Vec::new();
        check_determinism_dataflow(&f, &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn determinism_dataflow_ignores_ordered_maps() {
        let src = r#"
            fn f(map: &BTreeMap<u64, f64>) -> Vec<u64> {
                let mut out = Vec::new();
                for (k, _) in map { out.push(*k); }
                out
            }
        "#;
        let f = file("crates/engine/src/x.rs", src);
        let mut findings = Vec::new();
        check_determinism_dataflow(&f, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn panic_path_honors_no_panic_alias() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); } // lint:allow(no-panic) justified\n";
        let f = file("crates/algorithms/src/x.rs", src);
        let mut findings = Vec::new();
        check_panic_path(&f, &mut findings);
        assert!(findings.is_empty());
        let bare = file(
            "crates/algorithms/src/x.rs",
            "fn f(x: Option<u32>) { x.unwrap(); }",
        );
        check_panic_path(&bare, &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn panic_path_out_of_scope_for_bench() {
        let f = file(
            "crates/bench/src/x.rs",
            "fn f(x: Option<u32>) { x.unwrap(); }",
        );
        let mut findings = Vec::new();
        check_panic_path(&f, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn index_in_hot_path_flags_indexing_not_types() {
        let src = "fn f(v: &[f64], i: usize) -> f64 { let a: [u8; 4] = [0; 4]; v[i] }";
        let f = file("crates/algorithms/src/x.rs", src);
        let mut findings = Vec::new();
        check_index_in_hot_path(&f, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn guard_across_boundary_flags_live_guard() {
        let src = r#"
            fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
                let guard = m.lock().unwrap();
                tx.send(*guard);
            }
        "#;
        let f = file("crates/engine/src/x.rs", src);
        let mut findings = Vec::new();
        check_guard_across_boundary(&f, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`guard`"));
    }

    #[test]
    fn guard_across_boundary_respects_drop_and_scope() {
        let src = r#"
            fn scoped(m: &Mutex<u32>, tx: &Sender<u32>) {
                let v = { let guard = m.lock().unwrap(); *guard };
                tx.send(v);
            }
            fn dropped(m: &Mutex<u32>, tx: &Sender<u32>) {
                let guard = m.lock().unwrap();
                let v = *guard;
                drop(guard);
                tx.send(v);
            }
        "#;
        let f = file("crates/engine/src/x.rs", src);
        let mut findings = Vec::new();
        check_guard_across_boundary(&f, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn ignored_result_flags_bare_persist() {
        let src = "fn f(store: &mut S, cp: &Checkpoint) { store.persist(cp); }";
        let f = file("crates/core/src/x.rs", src);
        let mut findings = Vec::new();
        check_ignored_result(&f, &mut findings);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn ignored_result_accepts_question_mark_and_let() {
        let src = r#"
            fn f(store: &mut S, cp: &Checkpoint) -> Result<()> {
                store.persist(cp)?;
                let out = store.persist(cp);
                if store.persist(cp).is_err() { return out; }
                Ok(())
            }
        "#;
        let f = file("crates/core/src/x.rs", src);
        let mut findings = Vec::new();
        check_ignored_result(&f, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        let mut findings = Vec::new();
        check_unsafe_safety_comment(&file("crates/engine/src/x.rs", bad), &mut findings);
        assert_eq!(findings.len(), 1);
        findings.clear();
        check_unsafe_safety_comment(&file("crates/engine/src/x.rs", good), &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn telemetry_names_resolves_literals_and_consts() {
        let src = r#"
            fn f() {
                let _s = telemetry::span!("batch");
                telemetry::counter(telemetry::names::METRIC_BATCHES_TOTAL).inc();
                telemetry::counter("diststream_batches_total{kind=\"x\"}").inc();
            }
        "#;
        let f = file("crates/engine/src/x.rs", src);
        let mut used = BTreeSet::new();
        let mut findings = Vec::new();
        check_telemetry_names(&f, &catalog(), &mut used, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(used.contains("batch"));
        assert!(used.contains("METRIC_BATCHES_TOTAL"));
    }

    #[test]
    fn telemetry_names_flags_typo_and_unknown_const() {
        let src = r#"
            fn f() {
                let _s = telemetry::span!("bacth");
                telemetry::counter(telemetry::names::METRIC_DOES_NOT_EXIST).inc();
            }
        "#;
        let f = file("crates/engine/src/x.rs", src);
        let mut used = BTreeSet::new();
        let mut findings = Vec::new();
        check_telemetry_names(&f, &catalog(), &mut used, &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("bacth"));
        assert!(findings[1].message.contains("METRIC_DOES_NOT_EXIST"));
    }

    #[test]
    fn telemetry_names_flags_kind_mismatch() {
        let src = "fn f() { telemetry::counter(telemetry::names::SPAN_BATCH).inc(); }";
        let f = file("crates/engine/src/x.rs", src);
        let mut used = BTreeSet::new();
        let mut findings = Vec::new();
        check_telemetry_names(&f, &catalog(), &mut used, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("Span name used as a Metric"));
    }

    #[test]
    fn dead_name_detection_spares_used_consts() {
        let names_src =
            "pub const SPAN_BATCH: &str = \"batch\";\npub const SPAN_GHOST: &str = \"ghost\";\n";
        let user_src = "fn f() { let _s = telemetry::span!(telemetry::names::SPAN_BATCH); }";
        let files = vec![
            file(NAMES_PATH, names_src),
            file("crates/engine/src/x.rs", user_src),
        ];
        let catalog = vec![
            NameDef {
                const_name: "SPAN_BATCH".into(),
                value: "batch".into(),
                line: 1,
                kind: NameKind::Span,
            },
            NameDef {
                const_name: "SPAN_GHOST".into(),
                value: "ghost".into(),
                line: 2,
                kind: NameKind::Span,
            },
        ];
        let mut findings = Vec::new();
        check_dead_names(&files, &catalog, &BTreeSet::new(), &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("SPAN_GHOST"));
    }

    #[test]
    fn trace_rule_name_comparisons_must_resolve() {
        let src = r#"fn f(name: &str) { if name == "prefetch" {} if name == "not_a_span" {} }"#;
        let f = file("crates/xtask/src/trace_check.rs", src);
        let catalog = vec![NameDef {
            const_name: "SPAN_PREFETCH".into(),
            value: "prefetch".into(),
            line: 1,
            kind: NameKind::Span,
        }];
        let mut findings = Vec::new();
        check_trace_rule_names(&f, &catalog, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not_a_span"));
    }

    #[test]
    fn baseline_round_trip() {
        let mut counts = BTreeMap::new();
        counts.insert(
            ("panic-path".to_string(), "crates/a.rs".to_string()),
            3usize,
        );
        let text = render_baseline(&counts);
        let dir = std::env::temp_dir().join("xtask-analyze-test-baseline.txt");
        std::fs::write(&dir, &text).unwrap();
        let loaded = load_baseline(&dir).unwrap();
        std::fs::remove_file(&dir).ok();
        assert_eq!(
            loaded.get(&("panic-path".to_string(), "crates/a.rs".to_string())),
            Some(&3)
        );
    }
}

//! Workspace automation tasks.
//!
//! `cargo run -p xtask -- lint` walks every shipping `.rs` file under
//! `crates/*/src` and enforces the determinism invariant catalog in
//! `rules.rs`, printing `file:line: [rule] message` diagnostics and
//! exiting nonzero on any finding. Escape hatches, in order of
//! preference:
//!
//! 1. fix the code;
//! 2. `// lint:allow(<rule>) <why>` on the offending or preceding line;
//! 3. a repo-relative path in `crates/xtask/allow/<rule>.txt`.
//!
//! See DESIGN.md § "Determinism invariants and the lint catalog".
//!
//! `cargo run -p xtask -- check-trace <journal.jsonl>` validates a
//! telemetry span journal produced with `--trace-out`: schema version,
//! per-thread span nesting and ordering, and the per-batch critical-path
//! reconciliation. See DESIGN.md § "Telemetry".
//!
//! `cargo run -p xtask -- bench-check [--quick]` re-measures the
//! performance baseline and fails on a >15% calibration-normalized
//! throughput regression against the committed `BENCH_BASELINE.json`
//! (`BENCH_BASELINE_QUICK.json` with `--quick`). See DESIGN.md §9.

mod bench_check;
mod json;
mod lexer;
mod rules;
mod trace_check;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_root(&args[1..]) {
            Ok(root) => lint(root),
            Err(msg) => {
                eprintln!("xtask lint: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("rules") => {
            for rule in rules::catalog() {
                println!("{}\n    {}\n", rule.name, rule.rationale);
            }
            ExitCode::SUCCESS
        }
        Some("check-trace") => match args.get(1) {
            Some(path) if args.len() == 2 => check_trace(Path::new(path)),
            _ => {
                eprintln!("usage: cargo run -p xtask -- check-trace <journal.jsonl>");
                ExitCode::FAILURE
            }
        },
        Some("bench-check") => match bench_check::parse_args(&args[1..]) {
            Ok((quick, root_override)) => {
                let root = match root_override {
                    Some(root) => root,
                    None => match parse_root(&[]) {
                        Ok(root) => root,
                        Err(msg) => {
                            eprintln!("xtask bench-check: {msg}");
                            return ExitCode::FAILURE;
                        }
                    },
                };
                match bench_check::run_gate(&root, quick) {
                    Ok(true) => ExitCode::SUCCESS,
                    Ok(false) => ExitCode::FAILURE,
                    Err(msg) => {
                        eprintln!("xtask bench-check: {msg}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(msg) => {
                eprintln!("xtask bench-check: {msg}");
                eprintln!("usage: cargo run -p xtask -- bench-check [--quick] [--root <path>]");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <lint|rules|check-trace|bench-check> \
                 [--root <path>] [--quick] [<journal.jsonl>]"
            );
            ExitCode::FAILURE
        }
    }
}

fn check_trace(path: &Path) -> ExitCode {
    match trace_check::check_trace_file(path) {
        Ok(stats) => {
            println!(
                "xtask check-trace: {} OK — {} event line(s), {} span(s) closed across \
                 {} thread(s), {} point(s) ({} batch summaries reconciled)",
                path.display(),
                stats.lines,
                stats.spans_closed,
                stats.threads,
                stats.points,
                stats.batch_summaries
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for error in &errors {
                println!("{}: {error}", path.display());
            }
            println!(
                "xtask check-trace: {} violation(s) in {}",
                errors.len(),
                path.display()
            );
            ExitCode::FAILURE
        }
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [flag, path] if flag == "--root" => return Ok(PathBuf::from(path)),
        [flag] if flag == "--root" => return Err("--root requires a path argument".into()),
        [arg, ..] => return Err(format!("unrecognized argument `{arg}`")),
        [] => {}
    }
    // crates/xtask/ -> workspace root.
    Ok(Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from(".")))
}

fn lint(root: PathBuf) -> ExitCode {
    let files = match discover_files(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("xtask lint: cannot walk {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if files.is_empty() {
        eprintln!("xtask lint: no source files found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let catalog = rules::catalog();
    let allowlists: Vec<BTreeSet<String>> = catalog
        .iter()
        .map(|rule| load_allowlist(&root, rule.name))
        .collect();

    let mut findings: Vec<(String, rules::Violation)> = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let rel = relative_path(&root, file);
        let source = match std::fs::read_to_string(file) {
            Ok(source) => source,
            Err(err) => {
                eprintln!("xtask lint: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        };
        scanned += 1;
        let allows = lexer::inline_allows(&source);
        let shipping = lexer::strip_test_code(&lexer::lex(&source));
        for (rule, allowlist) in catalog.iter().zip(&allowlists) {
            if !(rule.applies)(&rel) || allowlist.contains(&rel) {
                continue;
            }
            for violation in (rule.check)(&shipping) {
                let suppressed = allows.iter().any(|(line, name)| {
                    name == rule.name && (*line == violation.line || *line + 1 == violation.line)
                });
                if !suppressed {
                    findings.push((rel.clone(), violation));
                }
            }
        }
    }

    findings.sort_by(|a, b| (&a.0, a.1.line, a.1.rule).cmp(&(&b.0, b.1.line, b.1.rule)));
    for (path, violation) in &findings {
        println!(
            "{path}:{line}: [{rule}] {message}",
            line = violation.line,
            rule = violation.rule,
            message = violation.message
        );
    }
    if findings.is_empty() {
        println!(
            "xtask lint: {scanned} files clean across {} rules",
            catalog.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) in {} file(s)",
            findings.len(),
            findings
                .iter()
                .map(|(path, _)| path)
                .collect::<BTreeSet<_>>()
                .len()
        );
        ExitCode::FAILURE
    }
}

/// Shipping sources: `crates/*/src/**/*.rs`. Integration tests, benches,
/// and the vendored stub crates are out of lint scope by construction.
fn discover_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Loads `crates/xtask/allow/<rule>.txt`: one repo-relative path per line,
/// `#` comments. A missing file means an empty allowlist.
fn load_allowlist(root: &Path, rule: &str) -> BTreeSet<String> {
    let path = root.join("crates/xtask/allow").join(format!("{rule}.txt"));
    let Ok(contents) = std::fs::read_to_string(&path) else {
        return BTreeSet::new();
    };
    contents
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_workspace_sources() {
        let root = parse_root(&[]).expect("default root");
        let files = discover_files(&root).expect("walk");
        let rels: Vec<String> = files.iter().map(|f| relative_path(&root, f)).collect();
        assert!(rels.iter().any(|r| r == "crates/engine/src/pool.rs"));
        assert!(rels.iter().any(|r| r == "crates/core/src/global.rs"));
        assert!(!rels.iter().any(|r| r.starts_with("vendor/")));
        assert!(!rels.iter().any(|r| r.contains("/tests/")));
    }

    #[test]
    fn allowlist_parsing_skips_comments() {
        let root = parse_root(&[]).expect("default root");
        let list = load_allowlist(&root, "wallclock-entropy");
        assert!(list.contains("crates/core/src/global.rs"));
        assert!(!list.iter().any(|entry| entry.starts_with('#')));
    }
}

//! Workspace automation tasks.
//!
//! `cargo run -p xtask -- lint` walks every shipping `.rs` file under
//! `crates/*/src` and enforces the determinism invariant catalog in
//! `rules.rs`, printing `file:line: [rule] message` diagnostics and
//! exiting nonzero on any finding. Escape hatches, in order of
//! preference:
//!
//! 1. fix the code;
//! 2. `// lint:allow(<rule>) <why>` on the offending or preceding line;
//! 3. a repo-relative path in `crates/xtask/allow/<rule>.txt`.
//!
//! See DESIGN.md § "Determinism invariants and the lint catalog".
//!
//! `cargo run -p xtask -- analyze` runs the flow-aware analysis pass:
//! the full legacy lint catalog *plus* the seven analyze rule families
//! (determinism-dataflow, panic-path, index-in-hot-path, telemetry-names,
//! guard-across-boundary, ignored-result, unsafe-without-safety-comment)
//! over one shared walk/lex of the workspace. `--sarif <path>` writes a
//! SARIF 2.1 log of the active findings; `--update-baseline` regenerates
//! `crates/xtask/analyze-baseline.txt` for the baseline-gated audits.
//! See DESIGN.md §7.
//!
//! `cargo run -p xtask -- check-trace <journal.jsonl>` validates a
//! telemetry span journal produced with `--trace-out`: schema version,
//! per-thread span nesting and ordering, and the per-batch critical-path
//! reconciliation. See DESIGN.md § "Telemetry".
//!
//! `cargo run -p xtask -- trace-analyze <journal.jsonl>` interprets a
//! journal's content: critical-path blame table, event-time latency
//! summary, `--baseline` phase-level diffing, `--what-if` scaling
//! prediction, and `--chrome-out` trace-event export. See DESIGN.md §12.
//!
//! `cargo run -p xtask -- bench-check [--quick]` re-measures the
//! performance baseline and fails on a >15% calibration-normalized
//! throughput regression against the committed `BENCH_BASELINE.json`
//! (`BENCH_BASELINE_QUICK.json` with `--quick`). See DESIGN.md §9.

#![forbid(unsafe_code)]

mod analyze;
mod bench_check;
#[cfg(test)]
mod fixture_tests;
mod json;
mod lexer;
mod parser;
mod rules;
mod sarif;
mod trace_analyze;
mod trace_check;
mod workspace;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_root(&args[1..]) {
            Ok(root) => lint(root),
            Err(msg) => {
                eprintln!("xtask lint: {msg}");
                ExitCode::FAILURE
            }
        },
        Some("analyze") => match parse_analyze_args(&args[1..]) {
            Ok((root, opts)) => run_analyze(&root, &opts),
            Err(msg) => {
                eprintln!("xtask analyze: {msg}");
                eprintln!(
                    "usage: cargo run -p xtask -- analyze [--root <path>] [--sarif <out.sarif>] \
                     [--update-baseline]"
                );
                ExitCode::FAILURE
            }
        },
        Some("rules") => {
            for rule in rules::catalog() {
                println!("{}\n    {}\n", rule.name, rule.rationale);
            }
            ExitCode::SUCCESS
        }
        Some("check-trace") => match args.get(1) {
            Some(path) if args.len() == 2 => check_trace(Path::new(path)),
            _ => {
                eprintln!("usage: cargo run -p xtask -- check-trace <journal.jsonl>");
                ExitCode::FAILURE
            }
        },
        Some("trace-analyze") => match trace_analyze::parse_args(&args[1..]) {
            Ok(opts) => match trace_analyze::run(&opts) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(msg) => {
                    eprintln!("xtask trace-analyze: {msg}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) => {
                eprintln!("xtask trace-analyze: {msg}");
                eprintln!(
                    "usage: cargo run -p xtask -- trace-analyze <journal.jsonl> \
                     [--baseline <journal.jsonl>] [--what-if p=8,16] \
                     [--chrome-out <trace.json>] [--blame-out <blame.txt>]"
                );
                ExitCode::FAILURE
            }
        },
        Some("bench-check") => match bench_check::parse_args(&args[1..]) {
            Ok((quick, root_override)) => {
                let root = match root_override {
                    Some(root) => root,
                    None => match parse_root(&[]) {
                        Ok(root) => root,
                        Err(msg) => {
                            eprintln!("xtask bench-check: {msg}");
                            return ExitCode::FAILURE;
                        }
                    },
                };
                match bench_check::run_gate(&root, quick) {
                    Ok(true) => ExitCode::SUCCESS,
                    Ok(false) => ExitCode::FAILURE,
                    Err(msg) => {
                        eprintln!("xtask bench-check: {msg}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(msg) => {
                eprintln!("xtask bench-check: {msg}");
                eprintln!("usage: cargo run -p xtask -- bench-check [--quick] [--root <path>]");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- \
                 <lint|analyze|rules|check-trace|trace-analyze|bench-check> \
                 [--root <path>] [--sarif <out.sarif>] [--update-baseline] [--quick] \
                 [--baseline <journal>] [--what-if p=8,16] [--chrome-out <f>] \
                 [--blame-out <f>] [<journal.jsonl>]"
            );
            ExitCode::FAILURE
        }
    }
}

fn check_trace(path: &Path) -> ExitCode {
    match trace_check::check_trace_file(path) {
        Ok(stats) => {
            println!(
                "xtask check-trace: {} OK — {} event line(s), {} span(s) closed across \
                 {} thread(s), {} point(s) ({} batch summaries reconciled)",
                path.display(),
                stats.lines,
                stats.spans_closed,
                stats.threads,
                stats.points,
                stats.batch_summaries
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for error in &errors {
                println!("{}: {error}", path.display());
            }
            println!(
                "xtask check-trace: {} violation(s) in {}",
                errors.len(),
                path.display()
            );
            ExitCode::FAILURE
        }
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [flag, path] if flag == "--root" => return Ok(PathBuf::from(path)),
        [flag] if flag == "--root" => return Err("--root requires a path argument".into()),
        [arg, ..] => return Err(format!("unrecognized argument `{arg}`")),
        [] => {}
    }
    default_root()
}

fn default_root() -> Result<PathBuf, String> {
    // crates/xtask/ -> workspace root.
    Ok(Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from(".")))
}

fn parse_analyze_args(args: &[String]) -> Result<(PathBuf, analyze::Options), String> {
    let mut root: Option<PathBuf> = None;
    let mut opts = analyze::Options {
        sarif_out: None,
        update_baseline: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let path = it.next().ok_or("--root requires a path argument")?;
                root = Some(PathBuf::from(path));
            }
            "--sarif" => {
                let path = it.next().ok_or("--sarif requires a path argument")?;
                opts.sarif_out = Some(PathBuf::from(path));
            }
            "--update-baseline" => opts.update_baseline = true,
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    let root = match root {
        Some(root) => root,
        None => default_root()?,
    };
    Ok((root, opts))
}

fn run_analyze(root: &Path, opts: &analyze::Options) -> ExitCode {
    let report = match analyze::run(root, opts) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("xtask analyze: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(out) = &opts.sarif_out {
        if let Err(msg) = analyze::write_sarif(&report, out) {
            eprintln!("xtask analyze: {msg}");
            return ExitCode::FAILURE;
        }
        println!("xtask analyze: SARIF log written to {}", out.display());
    }
    for f in &report.active {
        println!(
            "{path}:{line}: [{rule}] {message}",
            path = f.path,
            line = f.line,
            rule = f.rule,
            message = f.message
        );
    }
    for (rule, path, allowed, current) in &report.ratchet {
        println!(
            "xtask analyze: note: {path} is below its `{rule}` baseline ({current} < {allowed}); \
             run with --update-baseline to ratchet down"
        );
    }
    let suppressed: usize = report.baselined.values().sum();
    if report.active.is_empty() {
        println!(
            "xtask analyze: {} files clean across {} rules ({} baselined finding(s) grandfathered)",
            report.files_scanned, report.rules_run, suppressed
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask analyze: {} violation(s) in {} file(s) ({} baselined finding(s) grandfathered)",
            report.active.len(),
            report
                .active
                .iter()
                .map(|f| &f.path)
                .collect::<BTreeSet<_>>()
                .len(),
            suppressed
        );
        ExitCode::FAILURE
    }
}

fn lint(root: PathBuf) -> ExitCode {
    let files = match workspace::load(&root) {
        Ok(files) => files,
        Err(msg) => {
            eprintln!("xtask lint: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let catalog = rules::catalog();
    let allowlists: Vec<BTreeSet<String>> = catalog
        .iter()
        .map(|rule| workspace::load_allowlist(&root, rule.name))
        .collect();

    let mut findings: Vec<(String, rules::Violation)> = Vec::new();
    for file in &files {
        for (rule, allowlist) in catalog.iter().zip(&allowlists) {
            if !(rule.applies)(&file.rel) || allowlist.contains(&file.rel) {
                continue;
            }
            for violation in (rule.check)(&file.tokens) {
                if !file.allows(rule.name, violation.line) {
                    findings.push((file.rel.clone(), violation));
                }
            }
        }
    }

    findings.sort_by(|a, b| (&a.0, a.1.line, a.1.rule).cmp(&(&b.0, b.1.line, b.1.rule)));
    for (path, violation) in &findings {
        println!(
            "{path}:{line}: [{rule}] {message}",
            line = violation.line,
            rule = violation.rule,
            message = violation.message
        );
    }
    if findings.is_empty() {
        println!(
            "xtask lint: {} files clean across {} rules",
            files.len(),
            catalog.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) in {} file(s)",
            findings.len(),
            findings
                .iter()
                .map(|(path, _)| path)
                .collect::<BTreeSet<_>>()
                .len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_args_parse_all_flags() {
        let (root, opts) = parse_analyze_args(&[
            "--root".to_string(),
            "/tmp/ws".to_string(),
            "--sarif".to_string(),
            "out.sarif".to_string(),
            "--update-baseline".to_string(),
        ])
        .expect("valid args");
        assert_eq!(root, PathBuf::from("/tmp/ws"));
        assert_eq!(opts.sarif_out, Some(PathBuf::from("out.sarif")));
        assert!(opts.update_baseline);
    }

    #[test]
    fn analyze_args_reject_unknown_flags() {
        assert!(parse_analyze_args(&["--bogus".to_string()]).is_err());
        assert!(parse_analyze_args(&["--sarif".to_string()]).is_err());
    }

    #[test]
    fn default_root_is_the_workspace() {
        let root = parse_root(&[]).expect("default root");
        assert!(root.join("crates/xtask/Cargo.toml").is_file());
    }
}

//! SARIF 2.1.0 emission for `xtask analyze`.
//!
//! The log is a deliberate minimal subset of the schema — one run, one
//! tool, one result per finding with a physical location — which is enough
//! for GitHub code-scanning upload and editor SARIF viewers. Built on the
//! zero-dependency `json::emit` so keys sort deterministically and the
//! golden snapshot test can compare bytes.

use std::collections::BTreeMap;

use crate::analyze::Finding;
use crate::json::Json;

const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    let mut map = BTreeMap::new();
    for (k, v) in pairs {
        map.insert(k.to_string(), v);
    }
    Json::Object(map)
}

/// Serializes findings to a SARIF 2.1.0 log. Findings are emitted in the
/// order given; `analyze` sorts them by (path, line, rule) first, so the
/// output is stable for a fixed workspace state.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut rule_ids: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();

    let rules = Json::Array(
        rule_ids
            .iter()
            .map(|id| obj(vec![("id", Json::Str((*id).to_string()))]))
            .collect(),
    );

    let results = Json::Array(
        findings
            .iter()
            .map(|f| {
                obj(vec![
                    ("ruleId", Json::Str(f.rule.clone())),
                    ("level", Json::Str("error".to_string())),
                    ("message", obj(vec![("text", Json::Str(f.message.clone()))])),
                    (
                        "locations",
                        Json::Array(vec![obj(vec![(
                            "physicalLocation",
                            obj(vec![
                                (
                                    "artifactLocation",
                                    obj(vec![
                                        ("uri", Json::Str(f.path.clone())),
                                        ("uriBaseId", Json::Str("SRCROOT".to_string())),
                                    ]),
                                ),
                                ("region", obj(vec![("startLine", Json::Num(f.line as f64))])),
                            ]),
                        )])]),
                    ),
                ])
            })
            .collect(),
    );

    let run = obj(vec![
        (
            "tool",
            obj(vec![(
                "driver",
                obj(vec![
                    ("name", Json::Str("xtask-analyze".to_string())),
                    (
                        "informationUri",
                        Json::Str("https://github.com/diststream/diststream".to_string()),
                    ),
                    ("rules", rules),
                ]),
            )]),
        ),
        (
            "originalUriBaseIds",
            obj(vec![(
                "SRCROOT",
                obj(vec![("uri", Json::Str("file:///".to_string()))]),
            )]),
        ),
        ("results", results),
    ]);

    let log = obj(vec![
        ("$schema", Json::Str(SARIF_SCHEMA.to_string())),
        ("version", Json::Str(SARIF_VERSION.to_string())),
        ("runs", Json::Array(vec![run])),
    ]);
    crate::json::emit(&log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn finding() -> Finding {
        Finding {
            rule: "panic-path".to_string(),
            path: "crates/core/src/x.rs".to_string(),
            line: 7,
            message: "`.unwrap()` on a shipping path".to_string(),
        }
    }

    #[test]
    fn sarif_log_is_valid_json_with_expected_shape() {
        let text = to_sarif(&[finding()]);
        let doc = json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Json::as_array).expect("runs");
        assert_eq!(runs.len(), 1);
        let results = runs[0]
            .get("results")
            .and_then(Json::as_array)
            .expect("results");
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("panic-path")
        );
        let loc = results[0]
            .get("locations")
            .and_then(Json::as_array)
            .unwrap()[0]
            .get("physicalLocation")
            .expect("location");
        assert_eq!(
            loc.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Json::as_num),
            Some(7.0)
        );
    }

    #[test]
    fn empty_findings_emit_empty_results() {
        let text = to_sarif(&[]);
        let doc = json::parse(&text).expect("valid JSON");
        let runs = doc.get("runs").and_then(Json::as_array).expect("runs");
        assert_eq!(
            runs[0]
                .get("results")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn rules_deduplicate_and_sort() {
        let mut second = finding();
        second.rule = "ignored-result".to_string();
        let text = to_sarif(&[finding(), second, finding()]);
        let doc = json::parse(&text).expect("valid JSON");
        let rules = doc.get("runs").and_then(Json::as_array).unwrap()[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_array)
            .expect("rules");
        let ids: Vec<_> = rules
            .iter()
            .filter_map(|r| r.get("id").and_then(Json::as_str))
            .collect();
        assert_eq!(ids, vec!["ignored-result", "panic-path"]);
    }
}

//! Fixture-file tests for the analyze rule families.
//!
//! Each rule has a directory under `crates/xtask/fixtures/<rule>/` with
//! three files: `firing.rs` (the rule must flag it), `clean.rs` (the rule
//! must accept it), and `allowed.rs` (a violation suppressed by an inline
//! `// lint:allow(<rule>)` escape). Keeping the cases on disk instead of
//! inline strings makes the rule semantics reviewable as real code and
//! exercises the same lex/strip/allow pipeline production files go
//! through. The golden SARIF snapshot lives here too: regenerate it with
//! `REGEN_GOLDEN=1 cargo test -p xtask sarif_matches_golden`.

use std::path::Path;

use crate::analyze::{self, Finding, NameDef, NameKind};
use crate::lexer::{inline_allows, lex, strip_test_code};
use crate::sarif;
use crate::workspace::SourceFile;

/// Loads a fixture as a `SourceFile`, scoped under `rel` so path-scoped
/// rules (panic-path, index-in-hot-path) apply.
fn fixture(rule: &str, case: &str, rel: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(format!("{case}.rs"));
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("cannot read fixture {}: {err}", path.display()));
    SourceFile {
        rel: rel.to_string(),
        source: source.clone(),
        tokens: strip_test_code(&lex(&source)),
        allows: inline_allows(&source),
    }
}

/// A small synthetic catalog for the telemetry fixtures.
fn names_catalog() -> Vec<NameDef> {
    vec![
        NameDef {
            const_name: "SPAN_BATCH".into(),
            value: "batch".into(),
            line: 1,
            kind: NameKind::Span,
        },
        NameDef {
            const_name: "METRIC_BATCHES_TOTAL".into(),
            value: "diststream_batches_total".into(),
            line: 2,
            kind: NameKind::Metric,
        },
    ]
}

/// Runs one rule's check over a fixture and returns its findings.
fn run_rule(rule: &str, case: &str) -> Vec<Finding> {
    let rel = "crates/algorithms/src/fixture.rs";
    let file = fixture(rule, case, rel);
    let mut findings = Vec::new();
    match rule {
        "panic-path" => analyze::check_panic_path(&file, &mut findings),
        "index-in-hot-path" => analyze::check_index_in_hot_path(&file, &mut findings),
        "determinism-dataflow" => analyze::check_determinism_dataflow(&file, &mut findings),
        "guard-across-boundary" => analyze::check_guard_across_boundary(&file, &mut findings),
        "ignored-result" => analyze::check_ignored_result(&file, &mut findings),
        "unsafe-without-safety-comment" => {
            analyze::check_unsafe_safety_comment(&file, &mut findings)
        }
        "telemetry-names" => {
            let mut used = std::collections::BTreeSet::new();
            analyze::check_telemetry_names(&file, &names_catalog(), &mut used, &mut findings);
        }
        other => panic!("no fixture harness for rule `{other}`"),
    }
    findings
}

const RULES: [&str; 7] = [
    "panic-path",
    "index-in-hot-path",
    "determinism-dataflow",
    "guard-across-boundary",
    "ignored-result",
    "unsafe-without-safety-comment",
    "telemetry-names",
];

#[test]
fn firing_fixtures_fire() {
    for rule in RULES {
        let findings = run_rule(rule, "firing");
        assert!(
            !findings.is_empty(),
            "`{rule}` did not flag fixtures/{rule}/firing.rs"
        );
        assert!(
            findings.iter().all(|f| f.rule == rule),
            "`{rule}` produced findings under another rule name: {findings:?}"
        );
    }
}

#[test]
fn clean_fixtures_stay_clean() {
    for rule in RULES {
        let findings = run_rule(rule, "clean");
        assert!(
            findings.is_empty(),
            "`{rule}` flagged fixtures/{rule}/clean.rs: {findings:?}"
        );
    }
}

#[test]
fn allowed_fixtures_are_suppressed() {
    for rule in RULES {
        let findings = run_rule(rule, "allowed");
        assert!(
            findings.is_empty(),
            "inline allow did not suppress `{rule}` in fixtures/{rule}/allowed.rs: {findings:?}"
        );
    }
}

#[test]
fn firing_fixtures_report_real_lines() {
    for rule in RULES {
        for finding in run_rule(rule, "firing") {
            assert!(finding.line > 0, "`{rule}` reported line 0");
            assert!(
                !finding.message.is_empty(),
                "`{rule}` reported empty message"
            );
        }
    }
}

/// The findings snapshotted in `fixtures/golden.sarif` — a representative
/// pair covering two rules, sorted the way `analyze::run` sorts.
fn golden_findings() -> Vec<Finding> {
    vec![
        Finding {
            rule: "panic-path".into(),
            path: "crates/algorithms/src/clustream.rs".into(),
            line: 42,
            message: "`.unwrap()` on a shipping path; return a typed DistStreamError".into(),
        },
        Finding {
            rule: "telemetry-names".into(),
            path: "crates/engine/src/driver.rs".into(),
            line: 101,
            message: "Span name \"bacth\" does not resolve against \
                      crates/telemetry/src/names.rs; add it to the catalog or fix the typo"
                .into(),
        },
    ]
}

#[test]
fn sarif_matches_golden_snapshot() {
    let text = sarif::to_sarif(&golden_findings());
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/golden.sarif");
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, &text).expect("write golden snapshot");
    }
    let golden = std::fs::read_to_string(&path)
        .expect("fixtures/golden.sarif missing; run REGEN_GOLDEN=1 cargo test -p xtask");
    assert_eq!(
        text, golden,
        "SARIF emission drifted from fixtures/golden.sarif; if intentional, regenerate \
         with REGEN_GOLDEN=1 cargo test -p xtask sarif_matches_golden"
    );
    // The snapshot must also stay valid JSON with the SARIF envelope.
    let doc = crate::json::parse(&golden).expect("golden snapshot parses as JSON");
    assert_eq!(
        doc.get("version").and_then(crate::json::Json::as_str),
        Some("2.1.0")
    );
}

//! A minimal recursive-descent JSON parser for `xtask bench-check`.
//!
//! `BENCH_BASELINE.json` nests an array of entry objects, so the flat-object
//! parser in `trace_check` is not enough. This is still a deliberate subset
//! of JSON — objects, arrays, strings, numbers, booleans, null — with no
//! streaming and no serde dependency (xtask has none by design).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Key order is irrelevant to bench-check, so a sorted map is fine.
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, `None` for non-numbers.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serializes a value to pretty-printed JSON with two-space indentation.
///
/// Object keys emit in `BTreeMap` order (sorted), so the output is
/// byte-stable across runs — the SARIF golden-snapshot test depends on
/// this. Numbers print integers without a fraction (`3`, not `3.0`).
pub fn emit(value: &Json) -> String {
    let mut out = String::new();
    emit_into(value, 0, &mut out);
    out.push('\n');
    out
}

fn emit_into(value: &Json, indent: usize, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => emit_string(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                emit_into(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Json::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                emit_string(key, out);
                out.push_str(": ");
                emit_into(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.at));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == want => {
                self.at += 1;
                Ok(())
            }
            Some(c) => Err(format!(
                "expected `{}` at byte {}, found `{}`",
                want as char, self.at, c as char
            )),
            None => Err(format!("expected `{}`, found end of input", want as char)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!(
                "bad literal at byte {} (expected `{word}`)",
                self.at
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unsupported value starting with `{}` at byte {}",
                c as char, self.at
            )),
            None => Err("expected value, found end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // The journal and baseline files are ASCII-producing encoders,
            // but the source is valid UTF-8 — consume by char boundary.
            let rest = std::str::from_utf8(&self.bytes[self.at..])
                .map_err(|_| "invalid UTF-8 in string".to_string())?;
            let mut chars = rest.chars();
            match chars.next() {
                Some('"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let digit = self
                                    .peek()
                                    .and_then(|d| (d as char).to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + digit;
                                self.at += 1;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.at += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_baseline_shape() {
        let doc = parse(
            "{\n  \"schema\": 1,\n  \"mode\": \"quick\",\n  \"entries\": [\n    \
             {\"algo\": \"clustream\", \"parallelism\": 1, \"records_per_sec\": 1234.5},\n    \
             {\"algo\": \"denstream\", \"parallelism\": 4, \"records_per_sec\": 6.7e3}\n  ]\n}\n",
        )
        .expect("valid document");
        assert_eq!(doc.get("schema").and_then(Json::as_num), Some(1.0));
        assert_eq!(doc.get("mode").and_then(Json::as_str), Some("quick"));
        let entries = doc.get("entries").and_then(Json::as_array).expect("array");
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[1].get("records_per_sec").and_then(Json::as_num),
            Some(6700.0)
        );
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" null ").unwrap(), Json::Null);
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            parse("\"a\\\"b\\u0041\"").unwrap(),
            Json::Str("a\"bA".to_string())
        );
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(BTreeMap::new()));
    }

    #[test]
    fn emit_round_trips_and_sorts_keys() {
        let doc = parse(r#"{"z": [1, 2.5], "a": {"nested": true, "s": "x\"y"}, "n": null}"#)
            .expect("parse");
        let text = emit(&doc);
        // Keys sorted, integers without fraction, stable across a re-parse.
        assert!(text.find("\"a\"").unwrap() < text.find("\"z\"").unwrap());
        assert!(text.contains("\n    1,"));
        assert!(text.contains("2.5"));
        assert_eq!(parse(&text).expect("re-parse"), doc);
        assert_eq!(emit(&parse(&text).expect("re-parse")), text);
    }

    #[test]
    fn emit_empty_containers_stay_inline() {
        let doc = parse(r#"{"a": [], "b": {}}"#).expect("parse");
        let text = emit(&doc);
        assert!(text.contains("\"a\": []"));
        assert!(text.contains("\"b\": {}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\":1").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }
}

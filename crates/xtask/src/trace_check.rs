//! `xtask check-trace`: structural validation of a telemetry span journal.
//!
//! The journal (`--trace-out`) is JSONL with a leading `meta` line; every
//! other line is a flat object — an `open`/`close` span event or a named
//! `point` (see `crates/telemetry/src/journal.rs`). The checker verifies
//! what the integrity tests verify in-process, but against the actual file
//! an experiment produced:
//!
//! 1. the meta line is present and the schema version is supported;
//! 2. every event carries its required fields with sane types;
//! 3. per thread: sequence numbers strictly increase, timestamps never go
//!    backwards, spans nest LIFO (each `close` matches the innermost open
//!    span and records the same depth), and every opened span is closed;
//! 4. every `batch_summary` point reconciles: the critical-path components
//!    sum (sync protocol) or overlap-max (async protocol) to `total_secs`
//!    within 5%;
//! 5. pipeline spans sit where the overlapped pipeline puts them: a
//!    `prefetch` span never nests inside a `batch` span (ingest runs on its
//!    own worker thread, off the driver's batch loop), and a `combine` span
//!    always nests inside a `local_update` span (the map-side combine is
//!    part of step 2).
//!
//! The parser handles exactly the flat scalar objects the journal encoder
//! emits (string / number / null values, no nesting) — a deliberate subset
//! so xtask needs no JSON dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Journal schema version this checker understands. Mirrors
/// `diststream_telemetry::JOURNAL_VERSION` (the checker keeps its own
/// parser so a telemetry bug cannot hide from its own validator).
const SUPPORTED_VERSION: f64 = 1.0;

/// Relative tolerance for the `batch_summary` critical-path reconciliation.
const RECONCILE_REL_TOL: f64 = 0.05;

/// Summary of a successful check, for the one-line report.
#[derive(Debug, Default, PartialEq)]
pub struct TraceStats {
    pub lines: usize,
    pub spans_closed: usize,
    pub points: usize,
    pub batch_summaries: usize,
    pub threads: usize,
}

/// A minimal JSON scalar — everything the journal encoder can emit.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Null,
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Validates the journal file at `path`. Returns run statistics, or every
/// diagnostic found (each prefixed `line N:`).
pub fn check_trace_file(path: &Path) -> Result<TraceStats, Vec<String>> {
    let contents = std::fs::read_to_string(path)
        .map_err(|err| vec![format!("cannot read {}: {err}", path.display())])?;
    check_trace(&contents)
}

/// Validates journal contents (testable without touching the filesystem).
pub fn check_trace(contents: &str) -> Result<TraceStats, Vec<String>> {
    let mut errors = Vec::new();
    let mut stats = TraceStats::default();
    // Per-thread checker state: (last seq, last t_us, stack of open spans
    // as (name, depth, line number)).
    type SpanStack = Vec<(String, f64, usize)>;
    let mut threads: BTreeMap<u64, (f64, f64, SpanStack)> = BTreeMap::new();
    let mut saw_meta = false;

    for (idx, line) in contents.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        stats.lines += 1;
        let fields = match parse_flat_object(line) {
            Ok(fields) => fields,
            Err(err) => {
                errors.push(format!("line {lineno}: {err}"));
                continue;
            }
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(ev) = get("ev").and_then(Value::as_str) else {
            errors.push(format!("line {lineno}: missing string field `ev`"));
            continue;
        };

        if !saw_meta {
            // The meta line must come first so readers can dispatch on the
            // schema before touching any event.
            if ev != "meta" {
                errors.push(format!(
                    "line {lineno}: journal must start with a meta line, found `{ev}`"
                ));
            } else {
                match get("version").and_then(Value::as_num) {
                    Some(v) if v == SUPPORTED_VERSION => {}
                    Some(v) => errors.push(format!(
                        "line {lineno}: unsupported journal version {v} (expected {SUPPORTED_VERSION})"
                    )),
                    None => errors.push(format!("line {lineno}: meta line lacks `version`")),
                }
            }
            saw_meta = true;
            continue;
        }

        match ev {
            "meta" => {
                errors.push(format!("line {lineno}: duplicate meta line"));
            }
            "open" | "close" => {
                let name = get("span").and_then(Value::as_str).map(str::to_string);
                let thread = get("thread").and_then(Value::as_num);
                let seq = get("seq").and_then(Value::as_num);
                let t_us = get("t_us").and_then(Value::as_num);
                let depth = get("depth").and_then(Value::as_num);
                let (Some(name), Some(thread), Some(seq), Some(t_us), Some(depth)) =
                    (name, thread, seq, t_us, depth)
                else {
                    errors.push(format!(
                        "line {lineno}: `{ev}` event lacks span/thread/seq/t_us/depth"
                    ));
                    continue;
                };
                let state = threads
                    .entry(thread as u64)
                    .or_insert((-1.0, 0.0, Vec::new()));
                check_thread_order(state, seq, t_us, lineno, &mut errors);
                let stack = &mut state.2;
                if ev == "open" {
                    if depth != stack.len() as f64 {
                        errors.push(format!(
                            "line {lineno}: open `{name}` records depth {depth} but thread \
                             {thread} has {} open span(s)",
                            stack.len()
                        ));
                    }
                    if name == "prefetch" && stack.iter().any(|(n, _, _)| n == "batch") {
                        errors.push(format!(
                            "line {lineno}: `prefetch` span opened inside a `batch` span — \
                             ingest prefetch must run off the driver's batch loop"
                        ));
                    }
                    if name == "combine" && !stack.iter().any(|(n, _, _)| n == "local_update") {
                        errors.push(format!(
                            "line {lineno}: `combine` span opened outside a `local_update` \
                             span — the map-side combine belongs to step 2"
                        ));
                    }
                    stack.push((name, depth, lineno));
                } else {
                    if get("dur_us").and_then(Value::as_num).is_none() {
                        errors.push(format!("line {lineno}: close `{name}` lacks `dur_us`"));
                    }
                    match stack.pop() {
                        Some((open_name, open_depth, open_line)) => {
                            if open_name != name || open_depth != depth {
                                errors.push(format!(
                                    "line {lineno}: close `{name}` (depth {depth}) does not \
                                     match innermost open `{open_name}` (depth {open_depth}, \
                                     line {open_line}) — spans must nest LIFO"
                                ));
                            } else {
                                stats.spans_closed += 1;
                            }
                        }
                        None => errors.push(format!(
                            "line {lineno}: close `{name}` with no open span on thread {thread}"
                        )),
                    }
                }
            }
            "point" => {
                let name = get("name").and_then(Value::as_str).map(str::to_string);
                let thread = get("thread").and_then(Value::as_num);
                let seq = get("seq").and_then(Value::as_num);
                let t_us = get("t_us").and_then(Value::as_num);
                let (Some(name), Some(thread), Some(seq), Some(t_us)) = (name, thread, seq, t_us)
                else {
                    errors.push(format!(
                        "line {lineno}: `point` event lacks name/thread/seq/t_us"
                    ));
                    continue;
                };
                let state = threads
                    .entry(thread as u64)
                    .or_insert((-1.0, 0.0, Vec::new()));
                check_thread_order(state, seq, t_us, lineno, &mut errors);
                stats.points += 1;
                if name == "batch_summary" {
                    stats.batch_summaries += 1;
                    if let Some(err) = check_batch_summary(&get) {
                        errors.push(format!("line {lineno}: {err}"));
                    }
                }
            }
            "drops" => {
                // Trailer appended on close when the bounded journal queue
                // overflowed. A truncated journal fails validation: every
                // downstream analysis would silently under-count.
                match get("count").and_then(Value::as_num) {
                    Some(count) if count > 0.0 => errors.push(format!(
                        "line {lineno}: journal truncated — {count} event(s) dropped by the \
                         bounded writer queue (raise the queue capacity or slow the workload)"
                    )),
                    Some(_) => {}
                    None => errors.push(format!("line {lineno}: `drops` event lacks `count`")),
                }
            }
            other => {
                errors.push(format!("line {lineno}: unknown event kind `{other}`"));
            }
        }
    }

    if !saw_meta {
        errors.push("journal is empty (no meta line)".to_string());
    }
    for (thread, (_, _, stack)) in &threads {
        for (name, _, open_line) in stack {
            errors.push(format!(
                "line {open_line}: span `{name}` on thread {thread} is never closed"
            ));
        }
    }
    stats.threads = threads.len();
    if errors.is_empty() {
        Ok(stats)
    } else {
        Err(errors)
    }
}

/// Per-thread ordering: `seq` strictly increases and the monotonic
/// timestamp never goes backwards.
fn check_thread_order(
    state: &mut (f64, f64, Vec<(String, f64, usize)>),
    seq: f64,
    t_us: f64,
    lineno: usize,
    errors: &mut Vec<String>,
) {
    let (last_seq, last_t, _) = state;
    if seq <= *last_seq {
        errors.push(format!(
            "line {lineno}: seq {seq} not greater than previous {last_seq} on this thread"
        ));
    }
    if t_us < *last_t {
        errors.push(format!(
            "line {lineno}: t_us {t_us} moves backwards (previous {last_t}) on this thread"
        ));
    }
    *last_seq = seq;
    *last_t = t_us;
}

/// The `batch_summary` reconciliation: critical-path components must
/// reproduce `total_secs` within [`RECONCILE_REL_TOL`]. Sync protocol sums
/// all four; async overlaps the driver-side global update with the
/// parallel steps, so the critical path takes their max.
fn check_batch_summary<'a>(get: &impl Fn(&str) -> Option<&'a Value>) -> Option<String> {
    let component = |key: &str| -> Result<f64, String> {
        get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("batch_summary lacks numeric `{key}`"))
    };
    let parts: Result<Vec<f64>, String> = [
        "assignment_secs",
        "local_secs",
        "global_secs",
        "overhead_secs",
        "total_secs",
        "async_overlap",
    ]
    .iter()
    .map(|key| component(key))
    .collect();
    let parts = match parts {
        Ok(parts) => parts,
        Err(err) => return Some(err),
    };
    let [assignment, local, global, overhead, total, async_overlap] = parts[..] else {
        return Some("internal: component count mismatch".to_string());
    };
    let parallel = assignment + local;
    let expected = if async_overlap != 0.0 {
        parallel.max(global) + overhead
    } else {
        parallel + global + overhead
    };
    // Relative tolerance with a small absolute floor so near-empty batches
    // (microsecond totals) don't trip on rounding.
    let tolerance = (expected.abs() * RECONCILE_REL_TOL).max(1e-6);
    if (expected - total).abs() > tolerance {
        let mut msg = String::new();
        let _ = write!(
            msg,
            "batch_summary does not reconcile: components give {expected:.6}s \
             but total_secs is {total:.6}s (tolerance {tolerance:.6}s)"
        );
        return Some(msg);
    }
    None
}

/// Parses one flat JSON object (`{"key":value,...}`) with scalar values.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let src = line.trim();
    let mut fields = Vec::new();

    let expect =
        |chars: &mut std::iter::Peekable<std::str::CharIndices>, want: char| match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((at, c)) => Err(format!("expected `{want}` at byte {at}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of line")),
        };

    expect(&mut chars, '{')?;
    if chars.peek().map(|(_, c)| *c) == Some('}') {
        return Ok(fields);
    }
    loop {
        let key = parse_string(src, &mut chars)?;
        expect(&mut chars, ':')?;
        let value = parse_value(src, &mut chars)?;
        fields.push((key, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            Some((at, c)) => return Err(format!("expected `,` or `}}` at byte {at}, found `{c}`")),
            None => return Err("unterminated object".to_string()),
        }
    }
    if chars.next().is_some() {
        return Err("trailing characters after object".to_string());
    }
    Ok(fields)
}

fn parse_string(
    src: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices>,
) -> Result<String, String> {
    match chars.next() {
        Some((_, '"')) => {}
        Some((at, c)) => return Err(format!("expected `\"` at byte {at}, found `{c}`")),
        None => return Err("expected string, found end of line".to_string()),
    }
    let mut out = String::new();
    while let Some((at, c)) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let digit = chars
                            .next()
                            .and_then(|(_, d)| d.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + digit;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                _ => return Err(format!("bad escape in string at byte {at} of `{src}`")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_value(
    src: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices>,
) -> Result<Value, String> {
    match chars.peek() {
        Some((_, '"')) => parse_string(src, chars).map(Value::Str),
        Some((_, 'n')) => {
            for want in "null".chars() {
                match chars.next() {
                    Some((_, c)) if c == want => {}
                    _ => return Err("bad literal (expected `null`)".to_string()),
                }
            }
            Ok(Value::Null)
        }
        Some((start, c)) if *c == '-' || c.is_ascii_digit() => {
            let start = *start;
            let mut end = start;
            while let Some((at, c)) = chars.peek() {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    end = at + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            src[start..end]
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number `{}`", &src[start..end]))
        }
        Some((at, c)) => Err(format!(
            "unsupported value starting with `{c}` at byte {at}"
        )),
        None => Err("expected value, found end of line".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = "{\"ev\":\"meta\",\"version\":1,\"clock\":\"monotonic-us\"}";

    fn journal(lines: &[&str]) -> String {
        let mut out = String::from(META);
        for line in lines {
            out.push('\n');
            out.push_str(line);
        }
        out
    }

    #[test]
    fn accepts_well_formed_journal() {
        let contents = journal(&[
            "{\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":0,\"t_us\":10,\"depth\":0,\"batch\":0}",
            "{\"ev\":\"open\",\"span\":\"assignment\",\"thread\":0,\"seq\":1,\"t_us\":11,\"depth\":1,\"batch\":0}",
            "{\"ev\":\"close\",\"span\":\"assignment\",\"thread\":0,\"seq\":2,\"t_us\":20,\"depth\":1,\"dur_us\":9,\"batch\":0}",
            "{\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":3,\"t_us\":21,\"batch\":0,\
             \"records\":10.0,\"assignment_secs\":1.0,\"local_secs\":0.5,\"global_secs\":0.25,\
             \"overhead_secs\":0.25,\"total_secs\":2.0,\"async_overlap\":0.0}",
            "{\"ev\":\"close\",\"span\":\"batch\",\"thread\":0,\"seq\":4,\"t_us\":22,\"depth\":0,\"dur_us\":12,\"batch\":0}",
        ]);
        let stats = check_trace(&contents).expect("journal is valid");
        assert_eq!(stats.spans_closed, 2);
        assert_eq!(stats.points, 1);
        assert_eq!(stats.batch_summaries, 1);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn async_overlap_reconciles_with_max_form() {
        // total = max(1.0 + 0.5, 5.0) + 0.1 = 5.1 — the sync sum (6.6)
        // would fail, the async max must pass.
        let contents = journal(&[
            "{\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":0,\"t_us\":1,\
             \"assignment_secs\":1.0,\"local_secs\":0.5,\"global_secs\":5.0,\
             \"overhead_secs\":0.1,\"total_secs\":5.1,\"async_overlap\":1.0}",
        ]);
        assert!(check_trace(&contents).is_ok());
    }

    #[test]
    fn rejects_unclosed_and_misnested_spans() {
        let unclosed = journal(&[
            "{\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":0,\"t_us\":1,\"depth\":0}",
        ]);
        let errors = check_trace(&unclosed).expect_err("unclosed span");
        assert!(errors[0].contains("never closed"), "{errors:?}");

        let misnested = journal(&[
            "{\"ev\":\"open\",\"span\":\"a\",\"thread\":0,\"seq\":0,\"t_us\":1,\"depth\":0}",
            "{\"ev\":\"open\",\"span\":\"b\",\"thread\":0,\"seq\":1,\"t_us\":2,\"depth\":1}",
            "{\"ev\":\"close\",\"span\":\"a\",\"thread\":0,\"seq\":2,\"t_us\":3,\"depth\":0,\"dur_us\":2}",
        ]);
        let errors = check_trace(&misnested).expect_err("misnested spans");
        assert!(errors.iter().any(|e| e.contains("nest LIFO")), "{errors:?}");
    }

    #[test]
    fn rejects_seq_regression_and_missing_meta() {
        let regressed = journal(&[
            "{\"ev\":\"point\",\"name\":\"p\",\"thread\":0,\"seq\":5,\"t_us\":1}",
            "{\"ev\":\"point\",\"name\":\"p\",\"thread\":0,\"seq\":5,\"t_us\":2}",
        ]);
        let errors = check_trace(&regressed).expect_err("seq regression");
        assert!(errors.iter().any(|e| e.contains("seq")), "{errors:?}");

        let no_meta = "{\"ev\":\"point\",\"name\":\"p\",\"thread\":0,\"seq\":0,\"t_us\":1}";
        let errors = check_trace(no_meta).expect_err("missing meta");
        assert!(errors[0].contains("meta"), "{errors:?}");
    }

    #[test]
    fn rejects_unreconciled_batch_summary() {
        let contents = journal(&[
            "{\"ev\":\"point\",\"name\":\"batch_summary\",\"thread\":0,\"seq\":0,\"t_us\":1,\
             \"assignment_secs\":1.0,\"local_secs\":1.0,\"global_secs\":1.0,\
             \"overhead_secs\":0.0,\"total_secs\":9.0,\"async_overlap\":0.0}",
        ]);
        let errors = check_trace(&contents).expect_err("bad reconciliation");
        assert!(errors[0].contains("reconcile"), "{errors:?}");
    }

    #[test]
    fn independent_threads_have_independent_stacks() {
        let contents = journal(&[
            "{\"ev\":\"open\",\"span\":\"a\",\"thread\":0,\"seq\":0,\"t_us\":1,\"depth\":0}",
            "{\"ev\":\"open\",\"span\":\"b\",\"thread\":1,\"seq\":0,\"t_us\":1,\"depth\":0}",
            "{\"ev\":\"close\",\"span\":\"a\",\"thread\":0,\"seq\":1,\"t_us\":2,\"depth\":0,\"dur_us\":1}",
            "{\"ev\":\"close\",\"span\":\"b\",\"thread\":1,\"seq\":1,\"t_us\":2,\"depth\":0,\"dur_us\":1}",
        ]);
        let stats = check_trace(&contents).expect("two clean threads");
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.spans_closed, 2);
    }

    #[test]
    fn prefetch_span_must_not_nest_inside_batch() {
        // Correct placement: prefetch on its own (worker) thread.
        let ok = journal(&[
            "{\"ev\":\"open\",\"span\":\"prefetch\",\"thread\":1,\"seq\":0,\"t_us\":1,\"depth\":0}",
            "{\"ev\":\"close\",\"span\":\"prefetch\",\"thread\":1,\"seq\":1,\"t_us\":2,\"depth\":0,\"dur_us\":1}",
        ]);
        assert!(check_trace(&ok).is_ok());

        // Wrong placement: prefetch inside the driver's batch span.
        let bad = journal(&[
            "{\"ev\":\"open\",\"span\":\"batch\",\"thread\":0,\"seq\":0,\"t_us\":1,\"depth\":0}",
            "{\"ev\":\"open\",\"span\":\"prefetch\",\"thread\":0,\"seq\":1,\"t_us\":2,\"depth\":1}",
            "{\"ev\":\"close\",\"span\":\"prefetch\",\"thread\":0,\"seq\":2,\"t_us\":3,\"depth\":1,\"dur_us\":1}",
            "{\"ev\":\"close\",\"span\":\"batch\",\"thread\":0,\"seq\":3,\"t_us\":4,\"depth\":0,\"dur_us\":3}",
        ]);
        let errors = check_trace(&bad).expect_err("prefetch inside batch");
        assert!(errors.iter().any(|e| e.contains("prefetch")), "{errors:?}");
    }

    #[test]
    fn combine_span_must_nest_inside_local_update() {
        let ok = journal(&[
            "{\"ev\":\"open\",\"span\":\"local_update\",\"thread\":0,\"seq\":0,\"t_us\":1,\"depth\":0}",
            "{\"ev\":\"open\",\"span\":\"combine\",\"thread\":0,\"seq\":1,\"t_us\":2,\"depth\":1}",
            "{\"ev\":\"close\",\"span\":\"combine\",\"thread\":0,\"seq\":2,\"t_us\":3,\"depth\":1,\"dur_us\":1}",
            "{\"ev\":\"close\",\"span\":\"local_update\",\"thread\":0,\"seq\":3,\"t_us\":4,\"depth\":0,\"dur_us\":3}",
        ]);
        assert!(check_trace(&ok).is_ok());

        let bad = journal(&[
            "{\"ev\":\"open\",\"span\":\"combine\",\"thread\":0,\"seq\":0,\"t_us\":1,\"depth\":0}",
            "{\"ev\":\"close\",\"span\":\"combine\",\"thread\":0,\"seq\":1,\"t_us\":2,\"depth\":0,\"dur_us\":1}",
        ]);
        let errors = check_trace(&bad).expect_err("combine outside local_update");
        assert!(errors.iter().any(|e| e.contains("combine")), "{errors:?}");
    }

    #[test]
    fn drops_trailer_fails_only_when_events_were_lost() {
        let clean = journal(&["{\"ev\":\"drops\",\"count\":0}"]);
        assert!(check_trace(&clean).is_ok());

        let truncated = journal(&["{\"ev\":\"drops\",\"count\":3}"]);
        let errors = check_trace(&truncated).expect_err("dropped events");
        assert!(errors[0].contains("truncated"), "{errors:?}");

        let malformed = journal(&["{\"ev\":\"drops\"}"]);
        let errors = check_trace(&malformed).expect_err("missing count");
        assert!(errors[0].contains("count"), "{errors:?}");
    }

    #[test]
    fn parser_handles_escapes_null_and_rejects_garbage() {
        let fields =
            parse_flat_object("{\"a\":\"x\\\"y\",\"b\":-1.5e3,\"c\":null}").expect("parses");
        assert_eq!(fields[0].1, Value::Str("x\"y".to_string()));
        assert_eq!(fields[1].1, Value::Num(-1500.0));
        assert_eq!(fields[2].1, Value::Null);
        assert!(parse_flat_object("{\"a\":[1]}").is_err());
        assert!(parse_flat_object("{\"a\":1").is_err());
        assert!(parse_flat_object("not json").is_err());
    }
}

//! Shared workspace loading for the `lint` and `analyze` passes.
//!
//! Both passes operate on the same inputs: every shipping `.rs` file under
//! `crates/*/src`, lexed once, with test code stripped and inline
//! `// lint:allow(rule)` escapes collected. Loading lives here so the two
//! subcommands (and `analyze`, which runs *both* rule catalogs) walk and
//! lex the tree exactly once per invocation instead of once per pass.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Token};

/// One shipping source file, lexed and ready for every rule.
pub struct SourceFile {
    /// Repo-relative path with `/` separators (the rules' scoping key).
    pub rel: String,
    /// Raw source text (kept for line-oriented rules such as the
    /// `// SAFETY:` comment check).
    pub source: String,
    /// Tokens with `#[cfg(test)]` items removed — what the rules see.
    pub tokens: Vec<Token>,
    /// `(line, rule)` pairs from inline `// lint:allow(rule)` escapes.
    pub allows: Vec<(u32, String)>,
}

impl SourceFile {
    /// Whether an inline allow for `rule` covers `line` (same or preceding
    /// line, matching the lint pass convention).
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, name)| name == rule && (*l == line || *l + 1 == line))
    }
}

/// Walks `crates/*/src/**/*.rs` under `root` and lexes every file.
pub fn load(root: &Path) -> Result<Vec<SourceFile>, String> {
    let files =
        discover_files(root).map_err(|err| format!("cannot walk {}: {err}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no source files found under {}", root.display()));
    }
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let rel = relative_path(root, &file);
        let source =
            std::fs::read_to_string(&file).map_err(|err| format!("cannot read {rel}: {err}"))?;
        let allows = lexer::inline_allows(&source);
        let tokens = lexer::strip_test_code(&lexer::lex(&source));
        out.push(SourceFile {
            rel,
            source,
            tokens,
            allows,
        });
    }
    Ok(out)
}

/// Shipping sources: `crates/*/src/**/*.rs`. Integration tests, benches,
/// and the vendored stub crates are out of scan scope by construction.
pub fn discover_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

pub fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Loads `crates/xtask/allow/<rule>.txt`: one repo-relative path per line,
/// `#` comments. A missing file means an empty allowlist.
pub fn load_allowlist(root: &Path, rule: &str) -> BTreeSet<String> {
    let path = root.join("crates/xtask/allow").join(format!("{rule}.txt"));
    let Ok(contents) = std::fs::read_to_string(&path) else {
        return BTreeSet::new();
    };
    contents
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .expect("workspace root")
    }

    #[test]
    fn discovers_workspace_sources() {
        let root = root();
        let files = discover_files(&root).expect("walk");
        let rels: Vec<String> = files.iter().map(|f| relative_path(&root, f)).collect();
        assert!(rels.iter().any(|r| r == "crates/engine/src/pool.rs"));
        assert!(rels.iter().any(|r| r == "crates/core/src/global.rs"));
        assert!(!rels.iter().any(|r| r.starts_with("vendor/")));
        assert!(!rels.iter().any(|r| r.contains("/tests/")));
    }

    #[test]
    fn allowlist_parsing_skips_comments() {
        let list = load_allowlist(&root(), "wallclock-entropy");
        assert!(list.contains("crates/core/src/global.rs"));
        assert!(!list.iter().any(|entry| entry.starts_with('#')));
    }

    #[test]
    fn load_collects_tokens_and_allows() {
        let files = load(&root()).expect("load");
        let sequential = files
            .iter()
            .find(|f| f.rel == "crates/core/src/sequential.rs")
            .expect("sequential.rs present");
        assert!(!sequential.tokens.is_empty());
        // sequential.rs carries a known inline wallclock-entropy allow.
        assert!(sequential
            .allows
            .iter()
            .any(|(_, rule)| rule == "wallclock-entropy"));
    }

    #[test]
    fn inline_allow_covers_same_and_next_line() {
        let file = SourceFile {
            rel: "x.rs".into(),
            source: String::new(),
            tokens: Vec::new(),
            allows: vec![(10, "no-panic".into())],
        };
        assert!(file.allows("no-panic", 10));
        assert!(file.allows("no-panic", 11));
        assert!(!file.allows("no-panic", 12));
        assert!(!file.allows("other-rule", 10));
    }
}

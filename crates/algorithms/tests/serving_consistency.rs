//! Serving-snapshot consistency: epochs, immutability, checkpoint-equality,
//! and determinism of the published snapshots across parallelism degrees
//! and both pipelines, plus a real concurrent-reader run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use diststream_algorithms::{CluStream, CluStreamModel, CluStreamParams, ServingPredictor};
use diststream_core::{
    serving_handle, serving_reader, DistStreamJob, PipelineOptions, ServingHandle, ServingSnapshot,
    StreamClustering,
};
use diststream_engine::{decode, encode, ExecutionMode, StreamingContext, VecSource};
use diststream_types::{ClusteringConfig, Point, Record, Timestamp};

fn algo() -> CluStream {
    CluStream::new(CluStreamParams {
        max_micro_clusters: 24,
        ..Default::default()
    })
}

fn stream(n: u64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let x = (i % 6) as f64 * 7.0 + (i % 13) as f64 * 0.05;
            let y = (i % 4) as f64 * 5.0;
            Record::new(
                i,
                Point::from(vec![x, y]),
                Timestamp::from_secs(i as f64 * 0.1),
            )
        })
        .collect()
}

/// The `(epoch, model_bytes)` sequence observed at batch boundaries.
type ObservedSequence = Vec<(u64, Vec<u8>)>;

/// Runs one serving-enabled job and returns the final model's encoding plus
/// the `(epoch, model_bytes)` sequence observed at every batch boundary.
fn run_observed(p: usize, options: PipelineOptions) -> (Vec<u8>, ServingHandle, ObservedSequence) {
    let algo = algo();
    let ctx = StreamingContext::new(p, ExecutionMode::Simulated).unwrap();
    let handle = serving_handle();
    let mut reader = serving_reader(&handle);
    let mut observed: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut job = DistStreamJob::new(&algo, &ctx, ClusteringConfig::default());
    job.init_records(30)
        .pipeline(options)
        .serving(handle.clone());
    let result = job
        .run(VecSource::new(stream(600)), |report| {
            if let Some((epoch, snap)) = reader.current() {
                // The published snapshot is internally consistent with the
                // post-update model the report hands out: in the sync
                // pipeline that is this batch's model, in the overlapped
                // pipeline the previous batch's update was applied to the
                // same `model` binding the report borrows.
                assert_eq!(
                    snap.model_bytes,
                    encode(report.model),
                    "published bytes diverge from the driver model at epoch {epoch}"
                );
                if let Some((prev, _)) = observed.last() {
                    assert!(epoch > *prev, "epochs must be strictly increasing");
                }
                observed.push((epoch, snap.model_bytes.clone()));
            }
        })
        .unwrap();
    (encode(&result.model), handle, observed)
}

/// Sync + overlapped, p ∈ {1, 4, 8}: the final published snapshot is the
/// checkpoint encoding of the final model, and per-boundary snapshots match
/// the driver model (asserted inside `run_observed`).
#[test]
fn final_snapshot_equals_checkpoint_encoding() {
    for options in [PipelineOptions::sync(), PipelineOptions::all()] {
        for p in [1, 4, 8] {
            let (final_bytes, handle, observed) = run_observed(p, options);
            let (epoch, last) = handle.latest().expect("at least one publish");
            assert_eq!(last.epoch, epoch);
            assert_eq!(
                last.model_bytes, final_bytes,
                "final snapshot must equal the checkpoint encoding (p={p}, overlap={})",
                options.overlap
            );
            assert!(!observed.is_empty(), "boundary reader saw publishes");
        }
    }
}

/// The published `(epoch, bytes)` sequence is bit-identical across
/// parallelism degrees within each pipeline, and the synchronous epochs are
/// exactly the batch indices 0..n with no gaps.
#[test]
fn published_sequence_is_parallelism_invariant() {
    for options in [PipelineOptions::sync(), PipelineOptions::all()] {
        let (final1, _, base) = run_observed(1, options);
        for p in [4, 8] {
            let (finalp, _, seq) = run_observed(p, options);
            assert_eq!(finalp, final1, "final model differs at p={p}");
            assert_eq!(seq, base, "published sequence differs at p={p}");
        }
        if !options.overlap {
            for (i, (epoch, _)) in base.iter().enumerate() {
                assert_eq!(*epoch, i as u64, "sync epochs are the batch indices");
            }
        }
    }
}

/// A reader pinned to epoch N keeps an untouched snapshot while the stream
/// advances past N: later publishes replace the slot, never mutate it.
#[test]
fn pinned_epoch_is_immutable_while_stream_advances() {
    let algo = algo();
    let ctx = StreamingContext::new(4, ExecutionMode::Simulated).unwrap();
    let handle = serving_handle();
    let mut reader = serving_reader(&handle);
    let mut pinned: Option<(u64, Arc<ServingSnapshot>, Vec<u8>)> = None;
    let mut job = DistStreamJob::new(&algo, &ctx, ClusteringConfig::default());
    job.init_records(30).serving(handle.clone());
    job.run(VecSource::new(stream(600)), |_| {
        if pinned.is_none() {
            if let Some((epoch, snap)) = reader.current() {
                pinned = Some((epoch, Arc::clone(snap), snap.model_bytes.clone()));
            }
        }
    })
    .unwrap();
    let (epoch, snap, bytes_at_pin) = pinned.expect("pinned a snapshot");
    let (last_epoch, _) = handle.latest().unwrap();
    assert!(
        last_epoch > epoch,
        "the stream advanced past the pinned epoch"
    );
    assert_eq!(snap.epoch, epoch);
    assert_eq!(
        snap.model_bytes, bytes_at_pin,
        "pinned snapshot mutated after later publishes"
    );
    // The pinned bytes still decode to a model whose export matches the
    // pinned centroids — no partial state from a later epoch leaked in.
    let model: CluStreamModel = decode(&snap.model_bytes).unwrap();
    assert_eq!(algo.snapshot(&model), snap.centroids);
}

/// Real threads: two predictor readers answer queries non-stop while the
/// driver streams (Threads mode). Every answer must come from an
/// internally consistent snapshot and epochs seen by one reader never go
/// backwards.
#[test]
fn concurrent_readers_predict_while_streaming() {
    let algo = algo();
    let ctx = StreamingContext::new(2, ExecutionMode::Threads).unwrap();
    let handle = serving_handle();
    let stop = Arc::new(AtomicBool::new(false));
    let total_answered = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..2)
        .map(|r| {
            let mut predictor = ServingPredictor::new(&handle);
            let mut raw = serving_reader(&handle);
            let stop = Arc::clone(&stop);
            let total_answered = Arc::clone(&total_answered);
            let check = algo.clone();
            thread::spawn(move || {
                let mut answered = 0u64;
                let mut last_epoch = 0u64;
                let query = Point::from(vec![7.0 + r as f64, 5.0]);
                while !stop.load(Ordering::SeqCst) {
                    if let Some(p) = predictor.predict(&query) {
                        assert!(p.epoch >= last_epoch, "reader {r}: epoch went backwards");
                        assert!(p.distance.is_finite());
                        last_epoch = p.epoch;
                        answered += 1;
                        total_answered.fetch_add(1, Ordering::SeqCst);
                    }
                    // Periodically cross-check full snapshot integrity.
                    if answered % 64 == 0 {
                        if let Some((_, snap)) = raw.current() {
                            let model: CluStreamModel = decode(&snap.model_bytes).unwrap();
                            assert_eq!(
                                check.snapshot(&model),
                                snap.centroids,
                                "reader {r}: snapshot bytes and centroids disagree"
                            );
                        }
                    }
                }
                answered
            })
        })
        .collect();

    let mut job = DistStreamJob::new(&algo, &ctx, ClusteringConfig::default());
    job.init_records(30).serving(handle.clone());
    let result = job.run_to_end(VecSource::new(stream(2_000))).unwrap();
    // A fast release-mode run can finish before the readers get scheduled;
    // the latest snapshot stays readable after the stream ends, so waiting
    // here for a few answers terminates deterministically.
    while total_answered.load(Ordering::SeqCst) < 8 {
        thread::yield_now();
    }
    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for h in readers {
        total += h.join().expect("reader panicked");
    }
    assert!(total > 0, "readers answered at least one query");
    assert_eq!(
        handle.latest().unwrap().1.model_bytes,
        encode(&result.model),
        "final snapshot equals the final model under concurrency"
    );
}

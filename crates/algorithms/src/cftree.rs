//! A hierarchical CF tree — ClusTree's search structure.
//!
//! ClusTree "organizes micro-clusters as a tree structure for better data
//! summarization and fast record insertion" (paper §II-A): internal nodes
//! hold weighted centroid summaries of their subtrees, and lookups descend
//! greedily toward the child whose summary centroid is closest — an
//! approximate nearest-neighbor search in `O(fanout · depth · d)` instead of
//! a linear scan. Nodes that overflow the fanout split around their two
//! farthest entries, growing the tree upward like an R-tree.

use serde::{Deserialize, Serialize};

use diststream_types::Point;

/// One micro-cluster reference stored at a leaf.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LeafEntry {
    id: u64,
    centroid: Point,
    weight: f64,
}

/// Weighted centroid summary of a subtree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Summary {
    sum: Point,
    weight: f64,
}

impl Summary {
    fn of_leaf(entries: &[LeafEntry]) -> Summary {
        let mut sum = Point::zeros(entries.first().map_or(0, |e| e.centroid.dims()));
        let mut weight = 0.0;
        for e in entries {
            sum.add_in_place(&e.centroid.scaled(e.weight));
            weight += e.weight;
        }
        Summary { sum, weight }
    }

    fn of_children(children: &[(Summary, Box<Node>)]) -> Summary {
        let mut sum = Point::zeros(children.first().map_or(0, |(s, _)| s.sum.dims()));
        let mut weight = 0.0;
        for (s, _) in children {
            sum.add_in_place(&s.sum);
            weight += s.weight;
        }
        Summary { sum, weight }
    }

    fn centroid(&self) -> Point {
        if self.weight > 0.0 {
            self.sum.scaled(1.0 / self.weight)
        } else {
            self.sum.clone()
        }
    }

    /// Squared distance from this summary's centroid to `point`, computed
    /// without materializing the centroid. Bit-identical to
    /// `self.centroid().squared_distance(point)` (one division by the
    /// weight, then the same per-dimension multiply/subtract/accumulate
    /// order), so descent decisions are unchanged while the former
    /// per-child-per-level `Point` allocation disappears from the lookup
    /// hot path.
    fn centroid_squared_distance(&self, point: &Point) -> f64 {
        let mut acc = 0.0;
        if self.weight > 0.0 {
            let inv = 1.0 / self.weight;
            for (&s, &p) in self.sum.iter().zip(point.iter()) {
                let d = s * inv - p;
                acc += d * d;
            }
        } else {
            for (&s, &p) in self.sum.iter().zip(point.iter()) {
                let d = s - p;
                acc += d * d;
            }
        }
        acc
    }
}

/// A child of an internal node: its aggregate summary plus the subtree.
type Child = (Summary, Box<Node>);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<Child>),
}

/// An insert that overflowed a node returns the two replacement halves.
type Split = Option<(Summary, Node, Summary, Node)>;

/// The CF tree index: id-tagged weighted centroids, greedy-descent nearest
/// lookup, fanout-bounded nodes.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::CfTree;
/// use diststream_types::Point;
///
/// let mut tree = CfTree::new(3);
/// for (id, x) in [(0u64, 0.0), (1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0)] {
///     tree.insert(id, Point::from(vec![x]), 1.0);
/// }
/// let (id, dist) = tree.nearest(&Point::from(vec![11.0])).unwrap();
/// assert_eq!(id, 1);
/// assert_eq!(dist, 1.0);
/// assert!(tree.height() > 1); // five entries at fanout 3 forced a split
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfTree {
    fanout: usize,
    root: Option<Node>,
    len: usize,
}

impl CfTree {
    /// Creates an empty tree with the given node fanout.
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2`.
    pub fn new(fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        CfTree {
            fanout,
            root: None,
            len: 0,
        }
    }

    /// Builds a tree by inserting all `entries` in order.
    pub fn bulk<I: IntoIterator<Item = (u64, Point, f64)>>(fanout: usize, entries: I) -> Self {
        let mut tree = CfTree::new(fanout);
        for (id, centroid, weight) in entries {
            tree.insert(id, centroid, weight);
        }
        tree
    }

    /// Number of leaf entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 for empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Internal(children) => 1 + children.first().map_or(0, |(_, c)| depth(c)),
            }
        }
        self.root.as_ref().map_or(0, depth)
    }

    /// Inserts a micro-cluster reference.
    pub fn insert(&mut self, id: u64, centroid: Point, weight: f64) {
        self.len += 1;
        let entry = LeafEntry {
            id,
            centroid,
            weight,
        };
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf(vec![entry]));
            }
            Some(mut root) => {
                match insert_into(&mut root, entry, self.fanout) {
                    None => self.root = Some(root),
                    Some((s1, n1, s2, n2)) => {
                        // Root split: grow a new root.
                        self.root =
                            Some(Node::Internal(vec![(s1, Box::new(n1)), (s2, Box::new(n2))]));
                    }
                }
            }
        }
    }

    /// Greedy-descent approximate nearest entry: `(id, distance)`.
    ///
    /// Returns `None` on an empty tree. The descent picks the child whose
    /// summary centroid is closest at every level — ClusTree's insertion
    /// semantics — so the result may differ from the exact nearest neighbor
    /// when clusters overlap.
    pub fn nearest(&self, point: &Point) -> Option<(u64, f64)> {
        let mut node = self.root.as_ref()?;
        loop {
            match node {
                Node::Leaf(entries) => {
                    return entries
                        .iter()
                        .map(|e| (e.id, e.centroid.distance(point)))
                        .min_by(|a, b| a.1.total_cmp(&b.1));
                }
                Node::Internal(children) => {
                    // A structurally-valid tree never has an empty internal
                    // node; treat the degenerate case as "no neighbor"
                    // rather than panicking the search path.
                    let (_, child) = children.iter().min_by(|(a, _), (b, _)| {
                        a.centroid_squared_distance(point)
                            .total_cmp(&b.centroid_squared_distance(point))
                    })?;
                    node = child;
                }
            }
        }
    }

    /// Iterates over all `(id, weight)` leaf entries (test/diagnostic aid).
    pub fn entry_ids(&self) -> Vec<u64> {
        fn walk(node: &Node, out: &mut Vec<u64>) {
            match node {
                Node::Leaf(entries) => out.extend(entries.iter().map(|e| e.id)),
                Node::Internal(children) => {
                    for (_, c) in children {
                        walk(c, out);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        if let Some(root) = &self.root {
            walk(root, &mut out);
        }
        out
    }
}

fn insert_into(node: &mut Node, entry: LeafEntry, fanout: usize) -> Split {
    // A structurally-valid tree never has an empty internal node (splits
    // always produce two children); collapse the degenerate case to a leaf
    // so the descent below cannot hit an empty child list.
    if matches!(node, Node::Internal(children) if children.is_empty()) {
        *node = Node::Leaf(Vec::new());
    }
    match node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() <= fanout {
                None
            } else {
                let (left, right) = split_leaf(std::mem::take(entries));
                let s1 = Summary::of_leaf(&left);
                let s2 = Summary::of_leaf(&right);
                Some((s1, Node::Leaf(left), s2, Node::Leaf(right)))
            }
        }
        Node::Internal(children) => {
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, (a, _)), (_, (b, _))| {
                    a.centroid_squared_distance(&entry.centroid)
                        .total_cmp(&b.centroid_squared_distance(&entry.centroid))
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            let split = insert_into(&mut children[idx].1, entry, fanout);
            match split {
                None => {
                    // Refresh the child's summary.
                    children[idx].0 = summary_of(&children[idx].1);
                    None
                }
                Some((s1, n1, s2, n2)) => {
                    children.remove(idx);
                    children.push((s1, Box::new(n1)));
                    children.push((s2, Box::new(n2)));
                    if children.len() <= fanout {
                        None
                    } else {
                        let (left, right) = split_internal(std::mem::take(children));
                        let s1 = Summary::of_children(&left);
                        let s2 = Summary::of_children(&right);
                        Some((s1, Node::Internal(left), s2, Node::Internal(right)))
                    }
                }
            }
        }
    }
}

fn summary_of(node: &Node) -> Summary {
    match node {
        Node::Leaf(entries) => Summary::of_leaf(entries),
        Node::Internal(children) => Summary::of_children(children),
    }
}

/// Splits entries around the farthest pair (quadratic seeding, R-tree style).
fn split_leaf(entries: Vec<LeafEntry>) -> (Vec<LeafEntry>, Vec<LeafEntry>) {
    let (i, j) = farthest_pair(entries.iter().map(|e| &e.centroid));
    let mut left = Vec::new();
    let mut right = Vec::new();
    let seed_l = entries[i].centroid.clone();
    let seed_r = entries[j].centroid.clone();
    for e in entries {
        if e.centroid.squared_distance(&seed_l) <= e.centroid.squared_distance(&seed_r) {
            left.push(e);
        } else {
            right.push(e);
        }
    }
    (left, right)
}

fn split_internal(children: Vec<Child>) -> (Vec<Child>, Vec<Child>) {
    let centroids: Vec<Point> = children.iter().map(|(s, _)| s.centroid()).collect();
    let (i, j) = farthest_pair(centroids.iter());
    let seed_l = centroids[i].clone();
    let seed_r = centroids[j].clone();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (child, centroid) in children.into_iter().zip(centroids) {
        if centroid.squared_distance(&seed_l) <= centroid.squared_distance(&seed_r) {
            left.push(child);
        } else {
            right.push(child);
        }
    }
    (left, right)
}

fn farthest_pair<'a, I: Iterator<Item = &'a Point> + Clone>(points: I) -> (usize, usize) {
    let pts: Vec<&Point> = points.collect();
    let mut best = (0, pts.len().saturating_sub(1), -1.0);
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            let d = pts[i].squared_distance(pts[j]);
            if d > best.2 {
                best = (i, j, d);
            }
        }
    }
    (best.0, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tree_has_no_nearest() {
        let tree = CfTree::new(3);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.nearest(&Point::from(vec![0.0])).is_none());
    }

    #[test]
    fn single_entry() {
        let mut tree = CfTree::new(3);
        tree.insert(7, Point::from(vec![1.0]), 2.0);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.nearest(&Point::from(vec![0.0])), Some((7, 1.0)));
    }

    #[test]
    fn splits_grow_height() {
        let mut tree = CfTree::new(2);
        for i in 0..16 {
            tree.insert(i, Point::from(vec![i as f64]), 1.0);
        }
        assert_eq!(tree.len(), 16);
        assert!(tree.height() >= 3);
        // All ids preserved across splits.
        let mut ids = tree.entry_ids();
        ids.sort_unstable();
        assert_eq!(ids, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn nearest_finds_well_separated_targets() {
        let tree = CfTree::bulk(
            3,
            (0..10).map(|i| (i, Point::from(vec![i as f64 * 100.0]), 1.0)),
        );
        for i in 0..10 {
            let probe = Point::from(vec![i as f64 * 100.0 + 3.0]);
            let (id, dist) = tree.nearest(&probe).unwrap();
            assert_eq!(id, i);
            assert_eq!(dist, 3.0);
        }
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn rejects_degenerate_fanout() {
        let _ = CfTree::new(1);
    }

    proptest! {
        /// The inline descent distance equals the materialized-centroid
        /// computation bit for bit, so greedy descent decisions (and with
        /// them the replay gate) are unchanged by the allocation-free path.
        #[test]
        fn prop_inline_descent_distance_matches_centroid_bits(
            sums in prop::collection::vec((-1000.0_f64..1000.0, -1000.0_f64..1000.0), 1..30),
            weight in 0.0_f64..50.0,
            probe in prop::collection::vec(-1000.0_f64..1000.0, 2..3),
        ) {
            let point = Point::from(probe);
            for &(x, y) in &sums {
                let summary = Summary { sum: Point::from(vec![x, y]), weight };
                let naive = summary.centroid().squared_distance(&point);
                let inline = summary.centroid_squared_distance(&point);
                prop_assert_eq!(inline.to_bits(), naive.to_bits());
            }
        }

        #[test]
        fn prop_all_entries_preserved(
            xs in prop::collection::vec((-1000.0_f64..1000.0, -1000.0_f64..1000.0), 1..80),
            fanout in 2usize..6,
        ) {
            let tree = CfTree::bulk(
                fanout,
                xs.iter().enumerate().map(|(i, &(x, y))| (i as u64, Point::from(vec![x, y]), 1.0)),
            );
            prop_assert_eq!(tree.len(), xs.len());
            let mut ids = tree.entry_ids();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..xs.len() as u64).collect::<Vec<u64>>());
        }

        #[test]
        fn prop_nearest_is_reasonable(
            xs in prop::collection::vec(-1000.0_f64..1000.0, 2..60),
            probe in -1000.0_f64..1000.0,
        ) {
            // Greedy descent is approximate; assert the returned distance is
            // within a loose factor of the exact nearest distance plus the
            // tree returns a real entry.
            let tree = CfTree::bulk(
                3,
                xs.iter().enumerate().map(|(i, &x)| (i as u64, Point::from(vec![x]), 1.0)),
            );
            let p = Point::from(vec![probe]);
            let (id, dist) = tree.nearest(&p).unwrap();
            prop_assert!((id as usize) < xs.len());
            prop_assert!((dist - (xs[id as usize] - probe).abs()).abs() < 1e-9);
            let exact = xs.iter().map(|&x| (x - probe).abs()).fold(f64::INFINITY, f64::min);
            prop_assert!(dist >= exact - 1e-9);
        }
    }
}

//! Clustering-feature (CF) vectors — the additive micro-cluster sketch
//! shared by CluStream, DenStream, and ClusTree.
//!
//! A CF vector summarizes a set of records as `(CF2x, CF1x, CF2t, CF1t, w)`:
//! the per-dimension squared and linear sums of the points, the squared and
//! linear sums of the timestamps, and the (possibly decayed) weight. All
//! components are additive, which is what lets local updates run on detached
//! copies and merge back (paper §II-A, §VI).

use serde::{Deserialize, Serialize};

use diststream_core::{Sketch, WeightedPoint};
use diststream_types::{Point, Record, Timestamp};

/// An additive, decayable clustering-feature vector.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::CfVector;
/// use diststream_types::{Point, Record, Timestamp};
///
/// let a = Record::new(0, Point::from(vec![1.0, 0.0]), Timestamp::ZERO);
/// let b = Record::new(1, Point::from(vec![3.0, 0.0]), Timestamp::from_secs(1.0));
/// let mut cf = CfVector::from_record(&a);
/// cf.insert(&b, 1.0); // no decay
/// assert_eq!(cf.centroid().as_slice(), &[2.0, 0.0]);
/// assert_eq!(cf.weight(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfVector {
    /// Per-dimension squared sum `Σ w·x²`.
    cf2x: Point,
    /// Per-dimension linear sum `Σ w·x`.
    cf1x: Point,
    /// Squared timestamp sum `Σ w·t²`.
    cf2t: f64,
    /// Linear timestamp sum `Σ w·t`.
    cf1t: f64,
    /// Decayed weight `Σ w` (= record count when no decay).
    weight: f64,
    /// Creation time of the micro-cluster.
    created_at: Timestamp,
    /// Time of the last insert/decay.
    updated_at: Timestamp,
}

impl CfVector {
    /// Creates a CF vector holding exactly one record with unit weight.
    pub fn from_record(record: &Record) -> Self {
        let t = record.timestamp.secs();
        CfVector {
            cf2x: record.point.squared(),
            cf1x: record.point.clone(),
            cf2t: t * t,
            cf1t: t,
            weight: 1.0,
            created_at: record.timestamp,
            updated_at: record.timestamp,
        }
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.cf1x.dims()
    }

    /// The decayed weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Creation timestamp.
    pub fn created_at(&self) -> Timestamp {
        self.created_at
    }

    /// Timestamp of the last insert or decay.
    pub fn updated_at(&self) -> Timestamp {
        self.updated_at
    }

    /// Mean of the absorbed timestamps, in seconds.
    pub fn mean_time(&self) -> f64 {
        if self.weight > 0.0 {
            self.cf1t / self.weight
        } else {
            self.updated_at.secs()
        }
    }

    /// Standard deviation of the absorbed timestamps, in seconds.
    pub fn std_time(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let mean = self.cf1t / self.weight;
        (self.cf2t / self.weight - mean * mean).max(0.0).sqrt()
    }

    /// CluStream's relevance stamp: `μ_t + z·σ_t`, an estimate of the
    /// arrival time of the cluster's most recent records.
    pub fn relevance_stamp(&self, z: f64) -> f64 {
        self.mean_time() + z * self.std_time()
    }

    /// The centroid `CF1x / w`.
    pub fn centroid(&self) -> Point {
        if self.weight > 0.0 {
            self.cf1x.scaled(1.0 / self.weight)
        } else {
            self.cf1x.clone()
        }
    }

    /// RMS deviation of absorbed points from the centroid — the
    /// micro-cluster "radius" used for maximum-boundary checks.
    ///
    /// Returns 0.0 for a singleton.
    pub fn rms_radius(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let mut var_sum = 0.0;
        for (s2, s1) in self.cf2x.iter().zip(self.cf1x.iter()) {
            let mean = s1 / self.weight;
            var_sum += (s2 / self.weight - mean * mean).max(0.0);
        }
        var_sum.sqrt() // sqrt of the summed per-dimension variances
    }

    /// The radius the sketch would have after absorbing `point` with unit
    /// weight and no decay — DenStream's tentative-insertion check.
    pub fn radius_with(&self, point: &Point) -> f64 {
        let w = self.weight + 1.0;
        let mut var_sum = 0.0;
        for i in 0..point.dims() {
            let s2 = self.cf2x[i] + point[i] * point[i];
            let s1 = self.cf1x[i] + point[i];
            let mean = s1 / w;
            var_sum += (s2 / w - mean * mean).max(0.0);
        }
        var_sum.sqrt()
    }

    /// Applies decay factor `lambda` to every additive component and stamps
    /// the sketch as updated at `now`.
    pub fn decay(&mut self, lambda: f64, now: Timestamp) {
        debug_assert!((0.0..=1.0).contains(&lambda));
        self.cf2x.scale_in_place(lambda);
        self.cf1x.scale_in_place(lambda);
        self.cf2t *= lambda;
        self.cf1t *= lambda;
        self.weight *= lambda;
        self.updated_at = now;
    }

    /// Inserts a record: decays the sketch by `lambda` (computed by the
    /// caller from the record's arrival interval) then adds the record's
    /// increment `Δx = (x², x, t², t, 1)`.
    pub fn insert(&mut self, record: &Record, lambda: f64) {
        self.decay(lambda, record.timestamp.max(self.updated_at));
        let t = record.timestamp.secs();
        self.cf2x.add_in_place(&record.point.squared());
        self.cf1x.add_in_place(&record.point);
        self.cf2t += t * t;
        self.cf1t += t;
        self.weight += 1.0;
    }

    /// Adds another CF vector using the additivity property. The creation
    /// time becomes the earlier of the two; the update time the later.
    pub fn add(&mut self, other: &CfVector) {
        self.cf2x.add_in_place(&other.cf2x);
        self.cf1x.add_in_place(&other.cf1x);
        self.cf2t += other.cf2t;
        self.cf1t += other.cf1t;
        self.weight += other.weight;
        self.created_at = self.created_at.min(other.created_at);
        self.updated_at = self.updated_at.max(other.updated_at);
    }

    /// Exports centroid + weight for the offline phase.
    pub fn to_weighted_point(&self) -> WeightedPoint {
        WeightedPoint {
            point: self.centroid(),
            weight: self.weight,
        }
    }
}

impl Sketch for CfVector {
    fn centroid(&self) -> Point {
        CfVector::centroid(self)
    }

    fn weight(&self) -> f64 {
        self.weight
    }

    fn merge(&mut self, other: &Self) {
        self.add(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(id: u64, coords: Vec<f64>, t: f64) -> Record {
        Record::new(id, Point::from(coords), Timestamp::from_secs(t))
    }

    #[test]
    fn singleton_statistics() {
        let cf = CfVector::from_record(&rec(0, vec![2.0, 4.0], 3.0));
        assert_eq!(cf.weight(), 1.0);
        assert_eq!(cf.centroid().as_slice(), &[2.0, 4.0]);
        assert_eq!(cf.rms_radius(), 0.0);
        assert_eq!(cf.mean_time(), 3.0);
        assert_eq!(cf.std_time(), 0.0);
        assert_eq!(cf.created_at(), Timestamp::from_secs(3.0));
    }

    #[test]
    fn insert_updates_all_components() {
        let mut cf = CfVector::from_record(&rec(0, vec![0.0], 0.0));
        cf.insert(&rec(1, vec![4.0], 2.0), 1.0);
        assert_eq!(cf.weight(), 2.0);
        assert_eq!(cf.centroid().as_slice(), &[2.0]);
        assert_eq!(cf.mean_time(), 1.0);
        assert_eq!(cf.std_time(), 1.0);
        // Radius: points at 0 and 4, centroid 2 → rms deviation 2.
        assert!((cf.rms_radius() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn decay_scales_weight_but_not_centroid() {
        let mut cf = CfVector::from_record(&rec(0, vec![3.0, 1.0], 0.0));
        cf.insert(&rec(1, vec![5.0, 3.0], 0.0), 1.0);
        let before = cf.centroid();
        cf.decay(0.5, Timestamp::from_secs(1.0));
        assert_eq!(cf.weight(), 1.0);
        assert_eq!(cf.centroid(), before);
        assert_eq!(cf.updated_at(), Timestamp::from_secs(1.0));
    }

    #[test]
    fn radius_with_matches_actual_insert() {
        let mut cf = CfVector::from_record(&rec(0, vec![0.0, 0.0], 0.0));
        cf.insert(&rec(1, vec![2.0, 0.0], 0.0), 1.0);
        let predicted = cf.radius_with(&Point::from(vec![4.0, 0.0]));
        cf.insert(&rec(2, vec![4.0, 0.0], 0.0), 1.0);
        assert!((predicted - cf.rms_radius()).abs() < 1e-12);
    }

    #[test]
    fn add_is_component_wise() {
        let mut a = CfVector::from_record(&rec(0, vec![1.0], 0.0));
        let b = CfVector::from_record(&rec(1, vec![3.0], 5.0));
        a.add(&b);
        assert_eq!(a.weight(), 2.0);
        assert_eq!(a.centroid().as_slice(), &[2.0]);
        assert_eq!(a.created_at(), Timestamp::ZERO);
        assert_eq!(a.updated_at(), Timestamp::from_secs(5.0));
    }

    #[test]
    fn relevance_stamp_grows_with_recency() {
        let mut old = CfVector::from_record(&rec(0, vec![0.0], 0.0));
        old.insert(&rec(1, vec![0.0], 1.0), 1.0);
        let mut fresh = CfVector::from_record(&rec(2, vec![0.0], 10.0));
        fresh.insert(&rec(3, vec![0.0], 11.0), 1.0);
        assert!(fresh.relevance_stamp(1.0) > old.relevance_stamp(1.0));
    }

    #[test]
    fn weighted_point_export() {
        let cf = CfVector::from_record(&rec(0, vec![7.0], 0.0));
        let wp = cf.to_weighted_point();
        assert_eq!(wp.point.as_slice(), &[7.0]);
        assert_eq!(wp.weight, 1.0);
    }

    #[test]
    fn sketch_trait_merge_delegates_to_add() {
        let mut a = CfVector::from_record(&rec(0, vec![0.0], 0.0));
        let b = CfVector::from_record(&rec(1, vec![2.0], 0.0));
        Sketch::merge(&mut a, &b);
        assert_eq!(Sketch::centroid(&a).as_slice(), &[1.0]);
    }

    proptest! {
        #[test]
        fn prop_additivity_order_independent(
            xs in prop::collection::vec(-100.0_f64..100.0, 2..20),
        ) {
            // Building one CF from all records equals merging two halves.
            let records: Vec<Record> = xs.iter().enumerate()
                .map(|(i, &x)| rec(i as u64, vec![x], i as f64))
                .collect();
            let mid = records.len() / 2;
            let mut whole = CfVector::from_record(&records[0]);
            for r in &records[1..] {
                whole.insert(r, 1.0);
            }
            let mut left = CfVector::from_record(&records[0]);
            for r in &records[1..mid.max(1)] {
                left.insert(r, 1.0);
            }
            if mid >= 1 && mid < records.len() {
                let mut right = CfVector::from_record(&records[mid]);
                for r in &records[mid + 1..] {
                    right.insert(r, 1.0);
                }
                left.add(&right);
            }
            prop_assert!((left.weight() - whole.weight()).abs() < 1e-9);
            let (lc, wc) = (left.centroid(), whole.centroid());
            for (a, b) in lc.iter().zip(wc.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_radius_nonnegative(
            xs in prop::collection::vec(-50.0_f64..50.0, 1..15),
        ) {
            let mut cf = CfVector::from_record(&rec(0, vec![xs[0]], 0.0));
            for (i, &x) in xs.iter().enumerate().skip(1) {
                cf.insert(&rec(i as u64, vec![x], i as f64), 0.95);
            }
            prop_assert!(cf.rms_radius() >= 0.0);
            prop_assert!(cf.weight() > 0.0);
        }
    }
}

//! Clustering-feature (CF) vectors — the additive micro-cluster sketch
//! shared by CluStream, DenStream, and ClusTree.
//!
//! A CF vector summarizes a set of records as `(CF2x, CF1x, CF2t, CF1t, w)`:
//! the per-dimension squared and linear sums of the points, the squared and
//! linear sums of the timestamps, and the (possibly decayed) weight. All
//! components are additive, which is what lets local updates run on detached
//! copies and merge back (paper §II-A, §VI).

use serde::{Deserialize, Serialize};

use diststream_core::{Sketch, WeightedPoint};
use diststream_types::{
    lane_squared_distance, lane_squared_distance_bounded, lane_squared_norm, Point, Record,
    Timestamp,
};

/// An additive, decayable clustering-feature vector.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::CfVector;
/// use diststream_types::{Point, Record, Timestamp};
///
/// let a = Record::new(0, Point::from(vec![1.0, 0.0]), Timestamp::ZERO);
/// let b = Record::new(1, Point::from(vec![3.0, 0.0]), Timestamp::from_secs(1.0));
/// let mut cf = CfVector::from_record(&a);
/// cf.insert(&b, 1.0); // no decay
/// assert_eq!(cf.centroid().as_slice(), &[2.0, 0.0]);
/// assert_eq!(cf.weight(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfVector {
    /// Per-dimension squared sum `Σ w·x²`.
    cf2x: Point,
    /// Per-dimension linear sum `Σ w·x`.
    cf1x: Point,
    /// Squared timestamp sum `Σ w·t²`.
    cf2t: f64,
    /// Linear timestamp sum `Σ w·t`.
    cf1t: f64,
    /// Decayed weight `Σ w` (= record count when no decay).
    weight: f64,
    /// Creation time of the micro-cluster.
    created_at: Timestamp,
    /// Time of the last insert/decay.
    updated_at: Timestamp,
}

impl CfVector {
    /// Creates a CF vector holding exactly one record with unit weight.
    pub fn from_record(record: &Record) -> Self {
        let t = record.timestamp.secs();
        CfVector {
            cf2x: record.point.squared(),
            cf1x: record.point.clone(),
            cf2t: t * t,
            cf1t: t,
            weight: 1.0,
            created_at: record.timestamp,
            updated_at: record.timestamp,
        }
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.cf1x.dims()
    }

    /// The decayed weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Creation timestamp.
    pub fn created_at(&self) -> Timestamp {
        self.created_at
    }

    /// Timestamp of the last insert or decay.
    pub fn updated_at(&self) -> Timestamp {
        self.updated_at
    }

    /// Mean of the absorbed timestamps, in seconds.
    pub fn mean_time(&self) -> f64 {
        if self.weight > 0.0 {
            self.cf1t / self.weight
        } else {
            self.updated_at.secs()
        }
    }

    /// Standard deviation of the absorbed timestamps, in seconds.
    pub fn std_time(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let mean = self.cf1t / self.weight;
        (self.cf2t / self.weight - mean * mean).max(0.0).sqrt()
    }

    /// CluStream's relevance stamp: `μ_t + z·σ_t`, an estimate of the
    /// arrival time of the cluster's most recent records.
    pub fn relevance_stamp(&self, z: f64) -> f64 {
        self.mean_time() + z * self.std_time()
    }

    /// The centroid `CF1x / w`.
    pub fn centroid(&self) -> Point {
        if self.weight > 0.0 {
            self.cf1x.scaled(1.0 / self.weight)
        } else {
            self.cf1x.clone()
        }
    }

    /// RMS deviation of absorbed points from the centroid — the
    /// micro-cluster "radius" used for maximum-boundary checks.
    ///
    /// Returns 0.0 for a singleton.
    pub fn rms_radius(&self) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let mut var_sum = 0.0;
        for (s2, s1) in self.cf2x.iter().zip(self.cf1x.iter()) {
            let mean = s1 / self.weight;
            var_sum += (s2 / self.weight - mean * mean).max(0.0);
        }
        var_sum.sqrt() // sqrt of the summed per-dimension variances
    }

    /// The radius the sketch would have after absorbing `point` with unit
    /// weight and no decay — DenStream's tentative-insertion check.
    pub fn radius_with(&self, point: &Point) -> f64 {
        let w = self.weight + 1.0;
        let mut var_sum = 0.0;
        for ((&s2x, &s1x), &x) in self.cf2x.iter().zip(self.cf1x.iter()).zip(point.iter()) {
            let s2 = s2x + x * x;
            let s1 = s1x + x;
            let mean = s1 / w;
            var_sum += (s2 / w - mean * mean).max(0.0);
        }
        var_sum.sqrt()
    }

    /// Applies decay factor `lambda` to every additive component and stamps
    /// the sketch as updated at `now`.
    pub fn decay(&mut self, lambda: f64, now: Timestamp) {
        debug_assert!((0.0..=1.0).contains(&lambda));
        self.cf2x.scale_in_place(lambda);
        self.cf1x.scale_in_place(lambda);
        self.cf2t *= lambda;
        self.cf1t *= lambda;
        self.weight *= lambda;
        self.updated_at = now;
    }

    /// Inserts a record: decays the sketch by `lambda` (computed by the
    /// caller from the record's arrival interval) then adds the record's
    /// increment `Δx = (x², x, t², t, 1)`.
    pub fn insert(&mut self, record: &Record, lambda: f64) {
        self.decay(lambda, record.timestamp.max(self.updated_at));
        let t = record.timestamp.secs();
        self.cf2x.add_in_place(&record.point.squared());
        self.cf1x.add_in_place(&record.point);
        self.cf2t += t * t;
        self.cf1t += t;
        self.weight += 1.0;
    }

    /// Adds another CF vector using the additivity property. The creation
    /// time becomes the earlier of the two; the update time the later.
    pub fn add(&mut self, other: &CfVector) {
        self.cf2x.add_in_place(&other.cf2x);
        self.cf1x.add_in_place(&other.cf1x);
        self.cf2t += other.cf2t;
        self.cf1t += other.cf1t;
        self.weight += other.weight;
        self.created_at = self.created_at.min(other.created_at);
        self.updated_at = self.updated_at.max(other.updated_at);
    }

    /// Exports centroid + weight for the offline phase.
    pub fn to_weighted_point(&self) -> WeightedPoint {
        WeightedPoint {
            point: self.centroid(),
            weight: self.weight,
        }
    }
}

impl Sketch for CfVector {
    fn centroid(&self) -> Point {
        CfVector::centroid(self)
    }

    fn weight(&self) -> f64 {
        self.weight
    }

    fn merge(&mut self, other: &Self) {
        self.add(other);
    }
}

// ---------------------------------------------------------------------------
// SoA nearest-centroid kernel
// ---------------------------------------------------------------------------

/// Relative deflation applied to triangle-inequality screening bounds.
///
/// The screen `|‖c‖ − ‖x‖| ≤ ‖c − x‖` holds exactly over the reals but each
/// side is computed in floating point; deflating the lower bound by one part
/// in 10⁹ (orders of magnitude above the ~1e-15·dims rounding error of the
/// norm computations) guarantees we never skip a candidate the naive scan
/// would have selected.
const SCREEN_DEFLATE: f64 = 1.0 - 1e-9;

/// Structure-of-arrays nearest-centroid search kernel shared by the online
/// assignment hot paths of CluStream, DenStream, ClusTree, and the offline
/// k-means loop.
///
/// Centroids are flattened into one contiguous `f64` buffer with their
/// Euclidean norms cached, so a nearest-neighbour query runs over dense rows
/// with (a) a triangle-inequality screen against the running best and (b)
/// early exit of the per-row summation once the monotone partial sum can no
/// longer win. Row distances use the workspace's canonical lane-ordered
/// reduction ([`diststream_types::lane_squared_distance`]): a fixed 4-wide
/// accumulator loop LLVM autovectorizes, with the same lane assignment and
/// combine order as [`Point::squared_distance`] itself. Both cuts are
/// therefore *value-preserving*: the winning candidate's distance is always
/// the full canonical reduction, so the returned index and distance are
/// bit-identical to the naive per-cluster loop the kernel replaces
/// (property-tested in this module and relied on by the `debug_invariants`
/// p=1-vs-p=4 replay gate).
///
/// # Examples
///
/// ```
/// use diststream_algorithms::CentroidKernel;
/// use diststream_types::Point;
///
/// let mut kernel = CentroidKernel::new();
/// kernel.push_point(10, &Point::from(vec![0.0, 0.0]));
/// kernel.push_point(20, &Point::from(vec![3.0, 4.0]));
/// let (idx, dist) = kernel.nearest(&Point::from(vec![2.9, 4.1])).unwrap();
/// assert_eq!(kernel.id(idx), 20);
/// assert!(dist < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CentroidKernel {
    ids: Vec<u64>,
    centers: Vec<f64>,
    norms: Vec<f64>,
    dims: usize,
}

impl CentroidKernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        CentroidKernel::default()
    }

    /// Creates an empty kernel with room for `rows` centroids of `dims`
    /// dimensions.
    pub fn with_capacity(rows: usize, dims: usize) -> Self {
        CentroidKernel {
            ids: Vec::with_capacity(rows),
            centers: Vec::with_capacity(rows * dims),
            norms: Vec::with_capacity(rows),
            dims: 0,
        }
    }

    /// Number of centroids held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the kernel holds no centroids.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality of the stored centroids (0 until the first push).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Removes all centroids, keeping the allocated buffers.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.centers.clear();
        self.norms.clear();
        self.dims = 0;
    }

    /// The caller-supplied id of row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn id(&self, idx: usize) -> u64 {
        self.ids[idx]
    }

    /// The flattened centroid coordinates of row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn center(&self, idx: usize) -> &[f64] {
        &self.centers[idx * self.dims..(idx + 1) * self.dims]
    }

    /// Appends a centroid row from an iterator of coordinates.
    ///
    /// The first push fixes the kernel's dimensionality; later pushes must
    /// match it (checked with `debug_assert`).
    pub fn push_center(&mut self, id: u64, coords: impl IntoIterator<Item = f64>) {
        let start = self.centers.len();
        self.centers.extend(coords);
        if self.ids.is_empty() {
            self.dims = self.centers.len() - start;
        }
        debug_assert_eq!(
            self.centers.len() - start,
            self.dims,
            "kernel rows must share one dimensionality"
        );
        // Cached norm for the triangle-inequality screen. Only used as a
        // conservative bound, never compared for equality, so its own
        // rounding does not affect results.
        let row = self.centers.split_at(start).1;
        self.norms.push(lane_squared_norm(row).sqrt());
        self.ids.push(id);
    }

    /// Appends the centroid of `cf`, computed exactly as
    /// [`CfVector::centroid`] computes it (one division by the weight, then
    /// one multiply per coordinate) so the flattened row is bit-identical to
    /// the `Point` the naive loop would have materialized.
    pub fn push_cf(&mut self, id: u64, cf: &CfVector) {
        if cf.weight > 0.0 {
            let inv = 1.0 / cf.weight;
            self.push_center(id, cf.cf1x.iter().map(|&v| v * inv));
        } else {
            self.push_center(id, cf.cf1x.iter().copied());
        }
    }

    /// Appends a plain point as a centroid row.
    pub fn push_point(&mut self, id: u64, point: &Point) {
        self.push_center(id, point.iter().copied());
    }

    /// Nearest row to `query` by Euclidean distance, as `(row index,
    /// distance)`. Ties keep the earliest row, and the distance bits equal
    /// `centroid.distance(query)` of the naive scan.
    pub fn nearest(&self, query: &Point) -> Option<(usize, f64)> {
        self.nearest_filtered(query, |_| true)
    }

    /// Like [`CentroidKernel::nearest`], restricted to rows where
    /// `keep(idx)` is true.
    pub fn nearest_filtered(
        &self,
        query: &Point,
        mut keep: impl FnMut(usize) -> bool,
    ) -> Option<(usize, f64)> {
        let query = query.as_slice();
        let qnorm = lane_squared_norm(query).sqrt();
        let mut best: Option<(usize, f64, f64)> = None; // (idx, dist, dist²)
        for (idx, &rnorm) in self.norms.iter().enumerate() {
            if !keep(idx) {
                continue;
            }
            match best {
                None => {
                    let d2 = lane_squared_distance(self.center(idx), query);
                    best = Some((idx, d2.sqrt(), d2));
                }
                Some((_, best_d, best_d2)) => {
                    let gap = rnorm - qnorm;
                    if gap.abs() * SCREEN_DEFLATE >= best_d {
                        continue;
                    }
                    if let Some(d2) =
                        lane_squared_distance_bounded(self.center(idx), query, best_d2)
                    {
                        let d = d2.sqrt();
                        // sqrt is monotone, so d ≤ best_d here; the strict
                        // comparison keeps the earliest row on sqrt-level
                        // ties exactly like the naive `min_by` scan.
                        if d < best_d {
                            best = Some((idx, d, d2));
                        }
                    }
                }
            }
        }
        best.map(|(idx, d, _)| (idx, d))
    }

    /// Nearest row to `query` by *squared* Euclidean distance. Ties keep the
    /// earliest row, and the distance bits equal
    /// `centroid.squared_distance(query)` of the naive scan.
    pub fn nearest_squared(&self, query: &Point) -> Option<(usize, f64)> {
        self.nearest_squared_filtered(query, |_| true)
    }

    /// Like [`CentroidKernel::nearest_squared`], restricted to rows where
    /// `keep(idx)` is true.
    pub fn nearest_squared_filtered(
        &self,
        query: &Point,
        mut keep: impl FnMut(usize) -> bool,
    ) -> Option<(usize, f64)> {
        let query = query.as_slice();
        let qnorm = lane_squared_norm(query).sqrt();
        let mut best: Option<(usize, f64)> = None;
        for (idx, &rnorm) in self.norms.iter().enumerate() {
            if !keep(idx) {
                continue;
            }
            match best {
                None => {
                    let d2 = lane_squared_distance(self.center(idx), query);
                    best = Some((idx, d2));
                }
                Some((_, best_sq)) => {
                    let gap = rnorm - qnorm;
                    if gap * gap * SCREEN_DEFLATE >= best_sq {
                        continue;
                    }
                    if let Some(d2) =
                        lane_squared_distance_bounded(self.center(idx), query, best_sq)
                    {
                        best = Some((idx, d2));
                    }
                }
            }
        }
        best
    }

    /// Minimum Euclidean distance from row `idx` to any *other* row
    /// (`f64::INFINITY` when no other row exists) — CluStream's
    /// nearest-other-centroid boundary for singleton clusters. The value
    /// bits equal the naive `fold(INFINITY, f64::min)` over
    /// `other.distance(center)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn nearest_other_distance(&self, idx: usize) -> f64 {
        let query = self.center(idx);
        let qnorm = lane_squared_norm(query).sqrt();
        let mut best_d = f64::INFINITY;
        let mut best_d2 = f64::INFINITY;
        for (row, &rnorm) in self.norms.iter().enumerate() {
            if row == idx {
                continue;
            }
            let gap = rnorm - qnorm;
            if gap.abs() * SCREEN_DEFLATE >= best_d {
                continue;
            }
            if let Some(d2) = lane_squared_distance_bounded(self.center(row), query, best_d2) {
                let d = d2.sqrt();
                if d < best_d {
                    best_d = d;
                    best_d2 = d2;
                }
            }
        }
        best_d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(id: u64, coords: Vec<f64>, t: f64) -> Record {
        Record::new(id, Point::from(coords), Timestamp::from_secs(t))
    }

    #[test]
    fn singleton_statistics() {
        let cf = CfVector::from_record(&rec(0, vec![2.0, 4.0], 3.0));
        assert_eq!(cf.weight(), 1.0);
        assert_eq!(cf.centroid().as_slice(), &[2.0, 4.0]);
        assert_eq!(cf.rms_radius(), 0.0);
        assert_eq!(cf.mean_time(), 3.0);
        assert_eq!(cf.std_time(), 0.0);
        assert_eq!(cf.created_at(), Timestamp::from_secs(3.0));
    }

    #[test]
    fn insert_updates_all_components() {
        let mut cf = CfVector::from_record(&rec(0, vec![0.0], 0.0));
        cf.insert(&rec(1, vec![4.0], 2.0), 1.0);
        assert_eq!(cf.weight(), 2.0);
        assert_eq!(cf.centroid().as_slice(), &[2.0]);
        assert_eq!(cf.mean_time(), 1.0);
        assert_eq!(cf.std_time(), 1.0);
        // Radius: points at 0 and 4, centroid 2 → rms deviation 2.
        assert!((cf.rms_radius() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn decay_scales_weight_but_not_centroid() {
        let mut cf = CfVector::from_record(&rec(0, vec![3.0, 1.0], 0.0));
        cf.insert(&rec(1, vec![5.0, 3.0], 0.0), 1.0);
        let before = cf.centroid();
        cf.decay(0.5, Timestamp::from_secs(1.0));
        assert_eq!(cf.weight(), 1.0);
        assert_eq!(cf.centroid(), before);
        assert_eq!(cf.updated_at(), Timestamp::from_secs(1.0));
    }

    #[test]
    fn radius_with_matches_actual_insert() {
        let mut cf = CfVector::from_record(&rec(0, vec![0.0, 0.0], 0.0));
        cf.insert(&rec(1, vec![2.0, 0.0], 0.0), 1.0);
        let predicted = cf.radius_with(&Point::from(vec![4.0, 0.0]));
        cf.insert(&rec(2, vec![4.0, 0.0], 0.0), 1.0);
        assert!((predicted - cf.rms_radius()).abs() < 1e-12);
    }

    #[test]
    fn add_is_component_wise() {
        let mut a = CfVector::from_record(&rec(0, vec![1.0], 0.0));
        let b = CfVector::from_record(&rec(1, vec![3.0], 5.0));
        a.add(&b);
        assert_eq!(a.weight(), 2.0);
        assert_eq!(a.centroid().as_slice(), &[2.0]);
        assert_eq!(a.created_at(), Timestamp::ZERO);
        assert_eq!(a.updated_at(), Timestamp::from_secs(5.0));
    }

    #[test]
    fn relevance_stamp_grows_with_recency() {
        let mut old = CfVector::from_record(&rec(0, vec![0.0], 0.0));
        old.insert(&rec(1, vec![0.0], 1.0), 1.0);
        let mut fresh = CfVector::from_record(&rec(2, vec![0.0], 10.0));
        fresh.insert(&rec(3, vec![0.0], 11.0), 1.0);
        assert!(fresh.relevance_stamp(1.0) > old.relevance_stamp(1.0));
    }

    #[test]
    fn weighted_point_export() {
        let cf = CfVector::from_record(&rec(0, vec![7.0], 0.0));
        let wp = cf.to_weighted_point();
        assert_eq!(wp.point.as_slice(), &[7.0]);
        assert_eq!(wp.weight, 1.0);
    }

    #[test]
    fn sketch_trait_merge_delegates_to_add() {
        let mut a = CfVector::from_record(&rec(0, vec![0.0], 0.0));
        let b = CfVector::from_record(&rec(1, vec![2.0], 0.0));
        Sketch::merge(&mut a, &b);
        assert_eq!(Sketch::centroid(&a).as_slice(), &[1.0]);
    }

    #[test]
    fn kernel_push_cf_matches_centroid_bits() {
        let mut cf = CfVector::from_record(&rec(0, vec![0.3, -1.7, 9.1], 0.0));
        cf.insert(&rec(1, vec![2.2, 0.4, -3.0], 1.5), 0.9);
        let mut kernel = CentroidKernel::new();
        kernel.push_cf(7, &cf);
        let centroid = cf.centroid();
        assert_eq!(kernel.id(0), 7);
        for (a, b) in kernel.center(0).iter().zip(centroid.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn kernel_clear_keeps_capacity() {
        let mut kernel = CentroidKernel::with_capacity(4, 2);
        kernel.push_point(0, &Point::from(vec![1.0, 2.0]));
        kernel.push_point(1, &Point::from(vec![3.0, 4.0]));
        let cap = kernel.centers.capacity();
        kernel.clear();
        assert!(kernel.is_empty());
        assert_eq!(kernel.dims(), 0);
        assert_eq!(kernel.centers.capacity(), cap);
    }

    #[test]
    fn kernel_empty_returns_none() {
        let kernel = CentroidKernel::new();
        assert!(kernel.nearest(&Point::from(vec![1.0])).is_none());
        assert!(kernel.nearest_squared(&Point::from(vec![1.0])).is_none());
    }

    #[test]
    fn kernel_ties_keep_earliest_row() {
        // Two centroids equidistant from the query: the naive min_by keeps
        // the first, so must the kernel — in both distance domains.
        let mut kernel = CentroidKernel::new();
        kernel.push_point(10, &Point::from(vec![-1.0]));
        kernel.push_point(20, &Point::from(vec![1.0]));
        let q = Point::from(vec![0.0]);
        assert_eq!(kernel.nearest(&q).unwrap().0, 0);
        assert_eq!(kernel.nearest_squared(&q).unwrap().0, 0);
    }

    #[test]
    fn kernel_nearest_other_distance_of_two_rows() {
        let mut kernel = CentroidKernel::new();
        kernel.push_point(0, &Point::from(vec![0.0, 0.0]));
        kernel.push_point(1, &Point::from(vec![3.0, 4.0]));
        assert_eq!(kernel.nearest_other_distance(0), 5.0);
        assert_eq!(kernel.nearest_other_distance(1), 5.0);
        let mut single = CentroidKernel::new();
        single.push_point(0, &Point::from(vec![1.0]));
        assert_eq!(single.nearest_other_distance(0), f64::INFINITY);
    }

    /// Strategy: a set of CF vectors (each folded from a handful of random
    /// records, so weights and centroids are arbitrary) plus a query point,
    /// all of one dimensionality. Coordinates are generated at the maximum
    /// width and truncated to the drawn dimensionality (the vendored
    /// proptest has no `prop_flat_map`).
    fn cf_set_and_query() -> impl Strategy<Value = (Vec<CfVector>, Point)> {
        let coords = || prop::collection::vec(-1000.0_f64..1000.0, 4usize..5);
        let cfs = prop::collection::vec(prop::collection::vec(coords(), 1..6), 1..12);
        (1usize..5, cfs, coords()).prop_map(|(dims, cfs, mut query)| {
            query.truncate(dims);
            let cfs: Vec<CfVector> = cfs
                .into_iter()
                .map(|points| {
                    let mut iter = points.into_iter().enumerate();
                    let (_, mut first) = iter.next().expect("non-empty record set");
                    first.truncate(dims);
                    let mut cf = CfVector::from_record(&rec(0, first, 0.0));
                    for (i, mut p) in iter {
                        p.truncate(dims);
                        cf.insert(&rec(i as u64, p, i as f64), 0.97);
                    }
                    cf
                })
                .collect();
            (cfs, Point::from(query))
        })
    }

    proptest! {
        /// The kernel's sqrt-domain search returns the identical winning
        /// index and identical distance bits as the naive per-cluster loop
        /// (`centroid().distance()` + first-min scan) it replaces.
        #[test]
        fn prop_kernel_nearest_matches_naive_bits(
            (cfs, query) in cf_set_and_query(),
        ) {
            let mut kernel = CentroidKernel::new();
            for (i, cf) in cfs.iter().enumerate() {
                kernel.push_cf(i as u64, cf);
            }
            let naive = cfs
                .iter()
                .enumerate()
                .map(|(i, cf)| (i, cf.centroid().distance(&query)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            let (idx, dist) = kernel.nearest(&query).expect("non-empty");
            prop_assert_eq!(idx, naive.0);
            prop_assert_eq!(dist.to_bits(), naive.1.to_bits());
        }

        /// Same bit-identity in the squared-distance domain (DenStream's
        /// comparison space).
        #[test]
        fn prop_kernel_nearest_squared_matches_naive_bits(
            (cfs, query) in cf_set_and_query(),
        ) {
            let mut kernel = CentroidKernel::new();
            for (i, cf) in cfs.iter().enumerate() {
                kernel.push_cf(i as u64, cf);
            }
            let naive = cfs
                .iter()
                .enumerate()
                .map(|(i, cf)| (i, cf.centroid().squared_distance(&query)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            let (idx, d2) = kernel.nearest_squared(&query).expect("non-empty");
            prop_assert_eq!(idx, naive.0);
            prop_assert_eq!(d2.to_bits(), naive.1.to_bits());
        }

        /// Filtered squared search against the naive filtered scan, using a
        /// role mask like DenStream's potential/outlier split.
        #[test]
        fn prop_kernel_filtered_matches_naive_bits(
            (cfs, query) in cf_set_and_query(),
            mask_seed in 0u64..1024,
        ) {
            let mask: Vec<bool> = (0..cfs.len())
                .map(|i| (mask_seed >> (i % 10)) & 1 == 1)
                .collect();
            let mut kernel = CentroidKernel::new();
            for (i, cf) in cfs.iter().enumerate() {
                kernel.push_cf(i as u64, cf);
            }
            let naive = cfs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask[*i])
                .map(|(i, cf)| (i, cf.centroid().squared_distance(&query)))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            let got = kernel.nearest_squared_filtered(&query, |i| mask[i]);
            match (naive, got) {
                (None, None) => {}
                (Some((i, d2)), Some((gi, gd2))) => {
                    prop_assert_eq!(gi, i);
                    prop_assert_eq!(gd2.to_bits(), d2.to_bits());
                }
                (naive, got) => prop_assert!(false, "mismatch: {:?} vs {:?}", naive, got),
            }
        }

        /// `nearest_other_distance` equals the naive exclusion fold used by
        /// CluStream's singleton boundary.
        #[test]
        fn prop_kernel_nearest_other_matches_naive_bits(
            (cfs, _query) in cf_set_and_query(),
        ) {
            let mut kernel = CentroidKernel::new();
            for (i, cf) in cfs.iter().enumerate() {
                kernel.push_cf(i as u64, cf);
            }
            for (i, cf) in cfs.iter().enumerate() {
                let center = cf.centroid();
                let naive = cfs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, other)| other.centroid().distance(&center))
                    .fold(f64::INFINITY, f64::min);
                let got = kernel.nearest_other_distance(i);
                prop_assert_eq!(got.to_bits(), naive.to_bits());
            }
        }
    }

    proptest! {
        #[test]
        fn prop_additivity_order_independent(
            xs in prop::collection::vec(-100.0_f64..100.0, 2..20),
        ) {
            // Building one CF from all records equals merging two halves.
            let records: Vec<Record> = xs.iter().enumerate()
                .map(|(i, &x)| rec(i as u64, vec![x], i as f64))
                .collect();
            let mid = records.len() / 2;
            let mut whole = CfVector::from_record(&records[0]);
            for r in &records[1..] {
                whole.insert(r, 1.0);
            }
            let mut left = CfVector::from_record(&records[0]);
            for r in &records[1..mid.max(1)] {
                left.insert(r, 1.0);
            }
            if mid >= 1 && mid < records.len() {
                let mut right = CfVector::from_record(&records[mid]);
                for r in &records[mid + 1..] {
                    right.insert(r, 1.0);
                }
                left.add(&right);
            }
            prop_assert!((left.weight() - whole.weight()).abs() < 1e-9);
            let (lc, wc) = (left.centroid(), whole.centroid());
            for (a, b) in lc.iter().zip(wc.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_radius_nonnegative(
            xs in prop::collection::vec(-50.0_f64..50.0, 1..15),
        ) {
            let mut cf = CfVector::from_record(&rec(0, vec![xs[0]], 0.0));
            for (i, &x) in xs.iter().enumerate().skip(1) {
                cf.insert(&rec(i as u64, vec![x], i as f64), 0.95);
            }
            prop_assert!(cf.rms_radius() >= 0.0);
            prop_assert!(cf.weight() > 0.0);
        }
    }
}

//! CluStream (Aggarwal et al., VLDB 2003) on the DistStream APIs.
//!
//! CluStream keeps a fixed budget of `q` CF micro-clusters (the paper sets
//! `q` to ten times the number of real clusters). Records are absorbed by
//! the closest micro-cluster when they fall inside its maximum boundary
//! (a factor times the cluster's RMS radius); otherwise they found a new
//! micro-cluster, and the budget is restored by deleting the least-recent
//! micro-cluster (relevance stamp below a recency threshold) or, failing
//! that, merging the two closest micro-clusters. CluStream's sketch is not
//! decayed (`λ = 1`); aging is handled entirely by relevance-based deletion.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use diststream_core::{
    Assignment, MicroClusterId, Searcher, Sketch, StreamClustering, WeightedPoint,
};
use diststream_types::{DistStreamError, Point, Record, Result, Timestamp};

use crate::cf::{CentroidKernel, CfVector};
use crate::offline::{kmeans, KmeansParams};

/// Tuning parameters for [`CluStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CluStreamParams {
    /// Micro-cluster budget `q` (paper default: 10 × the real cluster count).
    pub max_micro_clusters: usize,
    /// Maximum-boundary factor `t`: a record joins a micro-cluster when its
    /// distance to the centroid is within `t ×` the RMS radius.
    pub boundary_factor: f64,
    /// Relevance horizon `δ` in virtual seconds: a micro-cluster whose
    /// relevance stamp is older than `now − δ` may be deleted.
    pub horizon_secs: f64,
    /// Quantile multiplier `z` in the relevance stamp `μ_t + z·σ_t`.
    pub relevance_z: f64,
    /// Centroid distance below which two newly created outlier
    /// micro-clusters are pre-merged (§V-C).
    pub premerge_distance: f64,
    /// Seed for the k-means initialization.
    pub seed: u64,
}

impl Default for CluStreamParams {
    fn default() -> Self {
        CluStreamParams {
            max_micro_clusters: 100,
            boundary_factor: 2.0,
            horizon_secs: 100.0,
            relevance_z: 1.0,
            premerge_distance: 1.0,
            seed: 0xC105,
        }
    }
}

/// The CluStream micro-cluster model: an id-keyed CF set under a capacity
/// budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CluStreamModel {
    mcs: BTreeMap<MicroClusterId, CfVector>,
    next_id: MicroClusterId,
}

impl CluStreamModel {
    /// Number of live micro-clusters.
    pub fn len(&self) -> usize {
        self.mcs.len()
    }

    /// Whether the model holds no micro-clusters.
    pub fn is_empty(&self) -> bool {
        self.mcs.is_empty()
    }

    /// Iterates over `(id, micro-cluster)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&MicroClusterId, &CfVector)> {
        self.mcs.iter()
    }

    fn insert_new(&mut self, cf: CfVector) -> MicroClusterId {
        let id = self.next_id;
        self.next_id += 1;
        self.mcs.insert(id, cf);
        id
    }

    /// Distance from `point` to the nearest micro-cluster other than
    /// `exclude` (used as a singleton's maximum boundary).
    fn nearest_other_distance(&self, point: &Point, exclude: MicroClusterId) -> f64 {
        self.mcs
            .iter()
            .filter(|(id, _)| **id != exclude)
            .map(|(_, cf)| cf.centroid().distance(point))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Per-task search structure for [`CluStream::assign_many`]: the model's
/// centroids flattened into a [`CentroidKernel`] plus each micro-cluster's
/// maximum boundary, both computed once per task instead of per record.
///
/// Boundaries reproduce [`CluStream::max_boundary`] exactly: `t ×` RMS
/// radius for multi-record clusters, nearest-other-centroid distance for
/// singletons (the kernel's exclusion scan is bit-identical to the naive
/// fold the per-record path uses).
struct CluStreamSearcher {
    kernel: CentroidKernel,
    boundaries: Vec<f64>,
}

impl CluStreamSearcher {
    fn build(model: &CluStreamModel, boundary_factor: f64) -> Self {
        let dims = model.mcs.values().next().map_or(0, CfVector::dims);
        let mut kernel = CentroidKernel::with_capacity(model.len(), dims);
        // NaN marks rows whose boundary needs the full kernel (singletons).
        let mut boundaries = Vec::with_capacity(model.len());
        for (id, cf) in model.mcs.iter() {
            kernel.push_cf(*id, cf);
            let rms = cf.rms_radius();
            if cf.weight() > 1.0 && rms > 0.0 {
                boundaries.push(boundary_factor * rms);
            } else {
                boundaries.push(f64::NAN);
            }
        }
        for (idx, boundary) in boundaries.iter_mut().enumerate() {
            if boundary.is_nan() {
                *boundary = kernel.nearest_other_distance(idx);
            }
        }
        CluStreamSearcher { kernel, boundaries }
    }

    fn assign(&self, record: &Record) -> Assignment {
        match self.kernel.nearest(&record.point) {
            Some((idx, dist)) if dist <= self.boundaries[idx] => {
                Assignment::Existing(self.kernel.id(idx))
            }
            _ => Assignment::New(record.id),
        }
    }
}

/// CluStream implemented through the four DistStream APIs.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::{CluStream, CluStreamParams};
/// use diststream_core::StreamClustering;
/// use diststream_types::{Point, Record, Timestamp};
///
/// let algo = CluStream::new(CluStreamParams { max_micro_clusters: 4, ..Default::default() });
/// let init: Vec<Record> = (0..20)
///     .map(|i| Record::new(i, Point::from(vec![(i % 4) as f64 * 5.0]), Timestamp::from_secs(i as f64)))
///     .collect();
/// let model = algo.init(&init)?;
/// assert!(model.len() <= 4);
/// # Ok::<(), diststream_types::DistStreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CluStream {
    params: CluStreamParams,
}

impl CluStream {
    /// Creates CluStream with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `max_micro_clusters` is zero or `boundary_factor` is not
    /// positive.
    pub fn new(params: CluStreamParams) -> Self {
        assert!(
            params.max_micro_clusters > 0,
            "micro-cluster budget must be at least 1"
        );
        assert!(
            params.boundary_factor > 0.0,
            "boundary factor must be positive"
        );
        CluStream { params }
    }

    /// The active parameters.
    pub fn params(&self) -> &CluStreamParams {
        &self.params
    }

    /// The maximum boundary of micro-cluster `id`: `t ×` RMS radius for a
    /// multi-record cluster, or the distance to the closest other
    /// micro-cluster for a singleton (the original CluStream heuristic).
    fn max_boundary(&self, model: &CluStreamModel, id: MicroClusterId, cf: &CfVector) -> f64 {
        let rms = cf.rms_radius();
        if cf.weight() > 1.0 && rms > 0.0 {
            self.params.boundary_factor * rms
        } else {
            model.nearest_other_distance(&cf.centroid(), id)
        }
    }

    /// Restores the capacity budget after inserting new micro-clusters.
    ///
    /// Deletion of below-horizon micro-clusters is handled first (cheap);
    /// remaining overage is resolved by repeatedly merging the closest pair.
    /// Centroids are cached across merge iterations so a burst of new
    /// micro-clusters costs `O(overage · n · d)` rather than
    /// `O(overage · n² · d)`.
    fn enforce_capacity(&self, model: &mut CluStreamModel, now: Timestamp) -> Result<()> {
        let recency_threshold = now.secs() - self.params.horizon_secs;
        // Phase 1: delete least-recent micro-clusters past the horizon.
        while model.len() > self.params.max_micro_clusters {
            let oldest = model
                .mcs
                .iter()
                .map(|(id, cf)| (*id, cf.relevance_stamp(self.params.relevance_z)))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match oldest {
                Some((id, stamp)) if stamp < recency_threshold => {
                    model.mcs.remove(&id);
                }
                _ => break,
            }
        }
        if model.len() <= self.params.max_micro_clusters {
            return Ok(());
        }
        // Phase 2: merge closest pairs over cached centroids, so each merge
        // costs one O(n²·d) pair scan without recomputing CF centroids.
        let mut items: Vec<(MicroClusterId, Point, f64)> = model
            .mcs
            .iter()
            .map(|(id, cf)| (*id, cf.centroid(), cf.weight()))
            .collect();
        while items.len() > self.params.max_micro_clusters {
            let mut best = (0usize, 1usize, f64::INFINITY);
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let d = items[i].1.squared_distance(&items[j].1);
                    if d < best.2 {
                        best = (i, j, d);
                    }
                }
            }
            let (i, j, _) = best;
            let (fold_id, _, _) = items.swap_remove(j);
            let folded = model
                .mcs
                .remove(&fold_id)
                .ok_or(DistStreamError::UnknownMicroCluster { id: fold_id })?;
            let keep_id = items[i].0;
            let keep = model
                .mcs
                .get_mut(&keep_id)
                .ok_or(DistStreamError::UnknownMicroCluster { id: keep_id })?;
            keep.add(&folded);
            items[i].1 = keep.centroid();
            items[i].2 = keep.weight();
        }
        Ok(())
    }
}

impl StreamClustering for CluStream {
    type Model = CluStreamModel;
    type Sketch = CfVector;

    fn name(&self) -> &str {
        "clustream"
    }

    fn init(&self, records: &[Record]) -> Result<CluStreamModel> {
        if records.is_empty() {
            return Err(DistStreamError::EmptyStream);
        }
        // Batch k-means into q seed clusters (paper §II-B), then summarize
        // each seed cluster as a CF vector.
        let points: Vec<WeightedPoint> = records
            .iter()
            .map(|r| WeightedPoint {
                point: r.point.clone(),
                weight: 1.0,
            })
            .collect();
        let mut km = KmeansParams::new(self.params.max_micro_clusters);
        km.seed = self.params.seed;
        let clusters = kmeans(&points, km);

        let mut model = CluStreamModel::default();
        let mut cf_by_cluster: BTreeMap<usize, CfVector> = BTreeMap::new();
        for (record, assigned) in records.iter().zip(clusters.assignment.iter()) {
            let c = assigned.ok_or_else(|| {
                DistStreamError::Invariant("k-means left an init point unassigned".into())
            })?;
            match cf_by_cluster.get_mut(&c) {
                Some(cf) => cf.insert(record, 1.0),
                None => {
                    cf_by_cluster.insert(c, CfVector::from_record(record));
                }
            }
        }
        for (_, cf) in cf_by_cluster {
            model.insert_new(cf);
        }
        Ok(model)
    }

    fn assign(&self, model: &CluStreamModel, record: &Record) -> Assignment {
        let closest = model
            .mcs
            .iter()
            .map(|(id, cf)| (*id, cf.centroid().distance(&record.point)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match closest {
            Some((id, dist)) => {
                let boundary = self.max_boundary(model, id, &model.mcs[&id]);
                if dist <= boundary {
                    Assignment::Existing(id)
                } else {
                    Assignment::New(record.id)
                }
            }
            None => Assignment::New(record.id),
        }
    }

    fn searcher<'m>(&'m self, model: &'m CluStreamModel) -> Searcher<'m> {
        let searcher = CluStreamSearcher::build(model, self.params.boundary_factor);
        Box::new(move |record| searcher.assign(record))
    }

    fn sketch_of(&self, model: &CluStreamModel, id: MicroClusterId) -> CfVector {
        model.mcs[&id].clone()
    }

    fn create(&self, record: &Record) -> CfVector {
        CfVector::from_record(record)
    }

    fn update(&self, sketch: &mut CfVector, record: &Record) {
        // CluStream does not decay: λ = 1 (paper §VI).
        sketch.insert(record, 1.0);
    }

    fn can_premerge(&self, a: &CfVector, b: &CfVector) -> bool {
        a.centroid().distance(&b.centroid()) <= self.params.premerge_distance
    }

    fn apply_global(
        &self,
        model: &mut CluStreamModel,
        updated: Vec<(MicroClusterId, CfVector)>,
        created: Vec<CfVector>,
        now: Timestamp,
    ) -> Result<()> {
        // An update's target may have died between the assignment snapshot
        // and now: under the asynchronous protocol the snapshot is one
        // global update stale, and the intervening capacity enforcement may
        // have merged the cluster away. Re-inserting the dead id would
        // resurrect it alongside the survivor that already carries its mass
        // and push the model over budget, costing one extra O(n²·d)
        // closest-pair merge per orphan. Instead, orphaned updates take the
        // same absorb-or-insert placement as created micro-clusters below
        // (ahead of them, preserving the update-then-create order).
        let mut orphaned: Vec<CfVector> = Vec::new();
        for (id, cf) in updated {
            match model.mcs.get_mut(&id) {
                Some(slot) => *slot = cf,
                None => orphaned.push(cf),
            }
        }
        // New micro-clusters are placed one at a time, restoring the budget
        // after each insertion — deletion and merging are irreversible, so
        // the order in which new micro-clusters arrive here decides which
        // old ones die (§IV-C2). The framework hands `created` in
        // creation-time order (order-aware) or shuffled (unordered).
        //
        // Placement re-checks absorption against the *authoritative* model
        // first: assignment ran against a stale broadcast (one batch stale
        // under the asynchronous protocol), so a "new" micro-cluster may by
        // now sit inside an existing cluster's maximum boundary — absorbing
        // it is CluStream's own rule for such points and costs one O(n·d)
        // scan instead of an O(n²·d) capacity merge.
        for cf in orphaned.into_iter().chain(created) {
            let centroid = cf.centroid();
            let closest = model
                .mcs
                .iter()
                .map(|(id, mc)| (*id, mc.centroid().distance(&centroid)))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match closest {
                Some((id, dist)) if dist <= self.max_boundary(model, id, &model.mcs[&id]) => {
                    if let Some(mc) = model.mcs.get_mut(&id) {
                        mc.merge(&cf);
                    }
                }
                _ => {
                    model.insert_new(cf);
                    self.enforce_capacity(model, now)?;
                }
            }
        }
        self.enforce_capacity(model, now)
    }

    fn snapshot(&self, model: &CluStreamModel) -> Vec<WeightedPoint> {
        model
            .mcs
            .values()
            .map(CfVector::to_weighted_point)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, x: f64, t: f64) -> Record {
        Record::new(id, Point::from(vec![x, 0.0]), Timestamp::from_secs(t))
    }

    fn algo(q: usize) -> CluStream {
        CluStream::new(CluStreamParams {
            max_micro_clusters: q,
            horizon_secs: 10.0,
            ..Default::default()
        })
    }

    fn seeded_model(algo: &CluStream) -> CluStreamModel {
        // Two well-populated micro-clusters near x = 0 and x = 10.
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(rec(
                i,
                (i % 2) as f64 * 10.0 + (i as f64) * 0.01,
                i as f64 * 0.1,
            ));
        }
        algo.init(&records).unwrap()
    }

    #[test]
    fn init_respects_budget() {
        let algo = algo(3);
        let records: Vec<Record> = (0..50)
            .map(|i| rec(i, (i % 10) as f64 * 3.0, i as f64))
            .collect();
        let model = algo.init(&records).unwrap();
        assert!(model.len() <= 3);
        assert!(!model.is_empty());
    }

    #[test]
    fn init_empty_errors() {
        assert!(algo(3).init(&[]).is_err());
    }

    #[test]
    fn assign_absorbs_within_boundary() {
        let algo = algo(10);
        let model = seeded_model(&algo);
        let near = rec(100, 0.02, 2.0);
        assert!(matches!(
            algo.assign(&model, &near),
            Assignment::Existing(_)
        ));
        let far = rec(101, 50.0, 2.0);
        assert_eq!(algo.assign(&model, &far), Assignment::New(101));
    }

    #[test]
    fn capacity_enforced_by_merge_or_delete() {
        let algo = algo(2);
        let mut model = seeded_model(&algo);
        // Insert new micro-clusters far away, at a recent time.
        let created = vec![
            CfVector::from_record(&rec(200, 100.0, 5.0)),
            CfVector::from_record(&rec(201, 200.0, 5.0)),
        ];
        algo.apply_global(&mut model, vec![], created, Timestamp::from_secs(5.0))
            .unwrap();
        assert!(model.len() <= 2);
    }

    #[test]
    fn old_micro_clusters_deleted_before_merging() {
        let algo = algo(2);
        // Two clusters built at t≈0, then new arrivals at t=1000 (way past
        // the 10s horizon): the old ones should be deleted, keeping the new.
        let mut model = seeded_model(&algo);
        let fresh_a = CfVector::from_record(&rec(300, 100.0, 1000.0));
        let fresh_b = CfVector::from_record(&rec(301, 200.0, 1000.0));
        algo.apply_global(
            &mut model,
            vec![],
            vec![fresh_a, fresh_b],
            Timestamp::from_secs(1000.0),
        )
        .unwrap();
        assert_eq!(model.len(), 2);
        let centroids: Vec<f64> = model.iter().map(|(_, cf)| cf.centroid()[0]).collect();
        assert!(centroids.contains(&100.0));
        assert!(centroids.contains(&200.0));
    }

    #[test]
    fn update_does_not_decay() {
        let algo = algo(10);
        let mut cf = algo.create(&rec(0, 1.0, 0.0));
        algo.update(&mut cf, &rec(1, 3.0, 100.0));
        assert_eq!(cf.weight(), 2.0);
        assert_eq!(cf.centroid()[0], 2.0);
    }

    #[test]
    fn premerge_uses_distance_threshold() {
        let algo = algo(10);
        let a = algo.create(&rec(0, 0.0, 0.0));
        let near = algo.create(&rec(1, 0.5, 0.0));
        let far = algo.create(&rec(2, 5.0, 0.0));
        assert!(algo.can_premerge(&a, &near));
        assert!(!algo.can_premerge(&a, &far));
    }

    #[test]
    fn snapshot_matches_model_size() {
        let algo = algo(10);
        let model = seeded_model(&algo);
        assert_eq!(algo.snapshot(&model).len(), model.len());
    }

    #[test]
    fn assign_many_matches_per_record_assign() {
        let algo = algo(10);
        // Mix of populated clusters and singletons so both boundary paths
        // (t·RMS and nearest-other-distance) are exercised.
        let mut model = seeded_model(&algo);
        model.insert_new(CfVector::from_record(&rec(50, 20.0, 1.0)));
        model.insert_new(CfVector::from_record(&rec(51, 22.0, 1.0)));
        let records: Vec<Record> = (0..200)
            .map(|i| rec(1000 + i, (i % 47) as f64 * 0.6, 2.0 + i as f64 * 0.01))
            .collect();
        let batched = algo.assign_many(&model, &records);
        for (r, got) in records.iter().zip(batched) {
            assert_eq!(got, algo.assign(&model, r), "record {:?}", r.id);
        }
    }

    #[test]
    fn singleton_boundary_is_nearest_other_distance() {
        let algo = algo(10);
        let mut model = CluStreamModel::default();
        model.insert_new(CfVector::from_record(&rec(0, 0.0, 0.0)));
        model.insert_new(CfVector::from_record(&rec(1, 10.0, 0.0)));
        // Point at 4.0: distance to singleton at 0 is 4, boundary = distance
        // to the other micro-cluster = 10 → absorbed.
        let r = rec(2, 4.0, 1.0);
        assert!(matches!(algo.assign(&model, &r), Assignment::Existing(0)));
    }
}

//! Distributed offline phase: data-parallel weighted k-means on the engine.
//!
//! The paper parallelizes only the online phase, noting that the offline
//! phase "can be efficiently parallelized using existing batch-mode
//! implementations such as distributed K-means" (§III). This module is that
//! implementation: Lloyd's assignment step fans out over the engine's task
//! slots (each task assigns a partition of points and emits partial weighted
//! sums per centroid), the driver reduces the partials into new centroids,
//! and the result matches the sequential [`kmeans`]: identical seeding and
//! assignment rule, with centroids equal up to floating-point summation
//! order (partial sums reduce task-by-task instead of index-by-index).
//!
//! [`kmeans`]: super::kmeans

use rand::rngs::StdRng;
use rand::SeedableRng;

use diststream_core::WeightedPoint;
use diststream_engine::{RoundRobinPartitioner, StreamingContext};
use diststream_types::{Point, Result};

use super::kmeans::plus_plus_seeds;
use super::{KmeansParams, MacroClusters};
use crate::cf::CentroidKernel;

/// Data-parallel weighted k-means over the engine's task slots.
///
/// Produces the same clustering as the sequential [`kmeans`] for the same
/// parameters — identical assignments on non-degenerate inputs, centroids
/// equal up to floating-point summation order — and is itself
/// deterministic at every parallelism degree.
///
/// # Errors
///
/// Propagates engine failures (task panics in thread mode).
///
/// # Examples
///
/// ```
/// use diststream_algorithms::offline::{kmeans, parallel_kmeans, KmeansParams};
/// use diststream_core::WeightedPoint;
/// use diststream_engine::{ExecutionMode, StreamingContext};
/// use diststream_types::Point;
///
/// let points: Vec<WeightedPoint> = (0..40)
///     .map(|i| WeightedPoint {
///         point: Point::from(vec![(i % 4) as f64 * 10.0 + (i / 4) as f64 * 0.01]),
///         weight: 1.0,
///     })
///     .collect();
/// let ctx = StreamingContext::new(4, ExecutionMode::Simulated)?;
/// let params = KmeansParams::new(4);
/// let parallel = parallel_kmeans(&ctx, &points, params)?;
/// assert_eq!(parallel.assignment, kmeans(&points, params).assignment);
/// # Ok::<(), diststream_types::DistStreamError>(())
/// ```
///
/// [`kmeans`]: super::kmeans
pub fn parallel_kmeans(
    ctx: &StreamingContext,
    points: &[WeightedPoint],
    params: KmeansParams,
) -> Result<MacroClusters> {
    if points.is_empty() || params.k == 0 {
        return Ok(MacroClusters {
            centroids: Vec::new(),
            assignment: vec![None; points.len()],
        });
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut centroids = plus_plus_seeds(points, params.k, &mut rng);
    let dims = points[0].point.dims();

    // Distribute point *indices* round-robin once; the partitioning is
    // stable across iterations so partial sums reduce deterministically.
    let indices: Vec<usize> = (0..points.len()).collect();
    let partitions = RoundRobinPartitioner.split(indices, ctx.parallelism());

    let mut assignment = vec![0usize; points.len()];
    // The flattened-centroid kernel is rebuilt once per Lloyd iteration and
    // shared read-only across tasks; its strict-`<` index-order scan returns
    // the same centroid index as the sequential reference.
    let mut kernel = CentroidKernel::with_capacity(centroids.len(), dims);
    for _ in 0..params.max_iters {
        kernel.clear();
        for (c, centroid) in centroids.iter().enumerate() {
            kernel.push_point(c as u64, centroid);
        }
        // Parallel assignment step: each task assigns its partition and
        // accumulates per-centroid weighted sums.
        type TaskOut = (Vec<(usize, usize)>, Vec<(Point, f64)>);
        let centroids_ref = &centroids;
        let kernel_ref = &kernel;
        let (outputs, _metrics) =
            ctx.run_tasks(partitions.clone(), |_task, idxs: Vec<usize>| -> TaskOut {
                let mut assigned = Vec::with_capacity(idxs.len());
                let mut partial: Vec<(Point, f64)> = centroids_ref
                    .iter()
                    .map(|_| (Point::zeros(dims), 0.0))
                    .collect();
                for i in idxs {
                    let wp = &points[i];
                    // Same guard as the sequential assign step: the kernel
                    // always holds k >= 1 centroids here.
                    let Some((c, _)) = kernel_ref.nearest_squared(&wp.point) else {
                        continue;
                    };
                    assigned.push((i, c));
                    partial[c].0.add_scaled_in_place(&wp.point, wp.weight);
                    partial[c].1 += wp.weight;
                }
                (assigned, partial)
            })?;

        // Driver-side reduction in task order (deterministic).
        let mut changed = false;
        let mut sums: Vec<(Point, f64)> = centroids
            .iter()
            .map(|_| (Point::zeros(dims), 0.0))
            .collect();
        for (assigned, partial) in outputs {
            for (i, c) in assigned {
                if assignment[i] != c {
                    assignment[i] = c;
                    changed = true;
                }
            }
            for (c, (sum, w)) in partial.into_iter().enumerate() {
                sums[c].0.add_in_place(&sum);
                sums[c].1 += w;
            }
        }
        for (c, (sum, w)) in sums.into_iter().enumerate() {
            if w > 0.0 {
                centroids[c] = sum.scaled(1.0 / w);
            }
        }
        if !changed {
            break;
        }
    }

    // Compact empty clusters, exactly like the sequential implementation.
    let mut used: Vec<usize> = assignment.clone();
    used.sort_unstable();
    used.dedup();
    let remap: std::collections::BTreeMap<usize, usize> = used
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    Ok(MacroClusters {
        centroids: used.iter().map(|&c| centroids[c].clone()).collect(),
        assignment: assignment.into_iter().map(|c| Some(remap[&c])).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::kmeans;
    use diststream_engine::ExecutionMode;
    use proptest::prelude::*;

    fn wp(x: f64, w: f64) -> WeightedPoint {
        WeightedPoint {
            point: Point::from(vec![x]),
            weight: w,
        }
    }

    fn ctx(p: usize) -> StreamingContext {
        StreamingContext::new(p, ExecutionMode::Simulated).unwrap()
    }

    #[test]
    fn empty_input() {
        let out = parallel_kmeans(&ctx(2), &[], KmeansParams::new(3)).unwrap();
        assert!(out.is_empty());
    }

    fn close(a: &MacroClusters, b: &MacroClusters) -> bool {
        a.len() == b.len()
            && a.centroids.iter().zip(b.centroids.iter()).all(|(x, y)| {
                x.iter()
                    .zip(y.iter())
                    .all(|(u, v)| (u - v).abs() <= 1e-9 * u.abs().max(v.abs()).max(1.0))
            })
    }

    #[test]
    fn matches_sequential_clustering() {
        let points: Vec<WeightedPoint> = (0..100)
            .map(|i| {
                wp(
                    (i % 9) as f64 * 2.5 + (i as f64) * 0.001,
                    1.0 + (i % 3) as f64,
                )
            })
            .collect();
        let params = KmeansParams::new(5);
        let sequential = kmeans(&points, params);
        for p in [1, 2, 4, 8] {
            let parallel = parallel_kmeans(&ctx(p), &points, params).unwrap();
            assert_eq!(
                parallel.assignment, sequential.assignment,
                "assignments diverged at parallelism {p}"
            );
            assert!(close(&parallel, &sequential), "centroids diverged at p={p}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let points: Vec<WeightedPoint> = (0..60).map(|i| wp((i % 5) as f64 * 3.0, 1.0)).collect();
        let params = KmeansParams::new(5);
        let a = parallel_kmeans(&ctx(3), &points, params).unwrap();
        let b = parallel_kmeans(&ctx(3), &points, params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn works_in_thread_mode() {
        let points: Vec<WeightedPoint> = (0..50).map(|i| wp((i % 4) as f64 * 7.0, 1.0)).collect();
        let params = KmeansParams::new(4);
        let threads = StreamingContext::new(4, ExecutionMode::Threads).unwrap();
        let out = parallel_kmeans(&threads, &points, params).unwrap();
        assert_eq!(out.assignment, kmeans(&points, params).assignment);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_parallel_matches_sequential_shape(
            xs in prop::collection::vec(-100.0_f64..100.0, 2..60),
            k in 1usize..5,
            p in 1usize..5,
        ) {
            let points: Vec<WeightedPoint> = xs.iter().map(|&x| wp(x, 1.0)).collect();
            let params = KmeansParams::new(k);
            let parallel = parallel_kmeans(&ctx(p), &points, params).unwrap();
            let sequential = kmeans(&points, params);
            prop_assert_eq!(parallel.assignment.len(), sequential.assignment.len());
            prop_assert!(close(&parallel, &sequential));
        }
    }
}

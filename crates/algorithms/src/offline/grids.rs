//! D-Stream's native offline phase: grouping *adjacent* dense grids.
//!
//! The paper: D-Stream "groups the adjacent grids with high `T_i` and large
//! `N_i` as macro-clusters" (§II-A). Unlike DBSCAN over centroids, the
//! native grouping uses grid-cell adjacency — two cells are neighbors when
//! their coordinate vectors differ by at most one step in exactly one
//! dimension.

use std::collections::{BTreeMap, VecDeque};

use diststream_core::{Sketch, WeightedPoint};
use diststream_types::Point;

use super::{weighted_mean, MacroClusters};
use crate::dstream::DStreamModel;

/// Groups a D-Stream model's dense grids into macro-clusters by cell
/// adjacency.
///
/// Grids with density below `min_density` are noise (`None`); the remaining
/// grids form connected components under the one-step-in-one-dimension
/// neighbor relation. Returns assignments in the model's iteration order
/// (ascending cell id) with each macro-cluster's weighted centroid.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::offline::adjacent_grid_clusters;
/// use diststream_algorithms::{DStream, DStreamParams};
/// use diststream_core::StreamClustering;
/// use diststream_types::{Point, Record, Timestamp};
///
/// let algo = DStream::new(DStreamParams::default());
/// // Two dense grid runs: cells {0,1} and a distant cell {10}.
/// let records: Vec<Record> = [0.5, 1.5, 0.6, 1.6, 10.5, 10.6]
///     .iter()
///     .enumerate()
///     .map(|(i, &x)| Record::new(i as u64, Point::from(vec![x]), Timestamp::ZERO))
///     .collect();
/// let model = algo.init(&records)?;
/// let macros = adjacent_grid_clusters(&model, 1.0);
/// assert_eq!(macros.len(), 2);
/// # Ok::<(), diststream_types::DistStreamError>(())
/// ```
pub fn adjacent_grid_clusters(model: &DStreamModel, min_density: f64) -> MacroClusters {
    let grids: Vec<(&Vec<i64>, WeightedPoint)> = model
        .iter()
        .map(|(_, g)| {
            (
                &g.coords,
                WeightedPoint {
                    point: Sketch::centroid(g),
                    weight: g.density,
                },
            )
        })
        .collect();
    let points: Vec<WeightedPoint> = grids.iter().map(|(_, wp)| wp.clone()).collect();

    // Index dense cells by coordinates for adjacency lookups.
    let dense: BTreeMap<&Vec<i64>, usize> = grids
        .iter()
        .enumerate()
        .filter(|(_, (_, wp))| wp.weight >= min_density)
        .map(|(i, (coords, _))| (*coords, i))
        .collect();

    let mut assignment: Vec<Option<usize>> = vec![None; grids.len()];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (&coords, &start) in &dense {
        if assignment[start].is_some() {
            continue;
        }
        let cluster_id = clusters.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::from([(coords.clone(), start)]);
        assignment[start] = Some(cluster_id);
        while let Some((cell, idx)) = queue.pop_front() {
            members.push(idx);
            // Visit the 2·d axis neighbors.
            for dim in 0..cell.len() {
                for step in [-1i64, 1] {
                    let mut neighbor = cell.clone();
                    neighbor[dim] += step;
                    if let Some(&j) = dense.get(&neighbor) {
                        if assignment[j].is_none() {
                            assignment[j] = Some(cluster_id);
                            queue.push_back((neighbor, j));
                        }
                    }
                }
            }
        }
        clusters.push(members);
    }

    // Every cluster holds at least its seed cell, so `weighted_mean` is
    // always `Some`; the zero-point fallback keeps centroid indices aligned
    // with the `assignment` cluster ids without a panic path.
    let dims = points.first().map_or(0, |wp| wp.point.dims());
    let centroids = clusters
        .iter()
        .map(|members| weighted_mean(&points, members).unwrap_or_else(|| Point::zeros(dims)))
        .collect();
    MacroClusters {
        centroids,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dstream::{DStream, DStreamParams};
    use diststream_core::StreamClustering;
    use diststream_types::{Point, Record, Timestamp};

    fn model_of(xs: &[(f64, f64)]) -> DStreamModel {
        let a = DStream::new(DStreamParams::default());
        let records: Vec<Record> = xs
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Record::new(i as u64, Point::from(vec![x, y]), Timestamp::ZERO))
            .collect();
        a.init(&records).unwrap()
    }

    #[test]
    fn l_shaped_chain_is_one_cluster() {
        // Cells (0,0)-(1,0)-(2,0)-(2,1)-(2,2): connected through shared axes.
        let model = model_of(&[(0.5, 0.5), (1.5, 0.5), (2.5, 0.5), (2.5, 1.5), (2.5, 2.5)]);
        let macros = adjacent_grid_clusters(&model, 0.5);
        assert_eq!(macros.len(), 1);
        assert!(macros.assignment.iter().all(|x| x == &Some(0)));
    }

    #[test]
    fn diagonal_cells_are_not_adjacent() {
        // (0,0) and (1,1) touch only at a corner → two clusters.
        let model = model_of(&[(0.5, 0.5), (1.5, 1.5)]);
        let macros = adjacent_grid_clusters(&model, 0.5);
        assert_eq!(macros.len(), 2);
    }

    #[test]
    fn sparse_grids_are_noise() {
        let model = model_of(&[(0.5, 0.5), (0.6, 0.6), (5.5, 5.5)]);
        // Cell (0,0) has density 2, cell (5,5) density 1 < threshold.
        let macros = adjacent_grid_clusters(&model, 1.5);
        assert_eq!(macros.len(), 1);
        assert_eq!(macros.assignment.iter().filter(|x| x.is_none()).count(), 1);
    }

    #[test]
    fn empty_model_is_empty() {
        let macros = adjacent_grid_clusters(&DStreamModel::default(), 1.0);
        assert!(macros.is_empty());
    }

    #[test]
    fn centroids_are_data_means_not_cell_centers() {
        let model = model_of(&[(0.2, 0.2), (0.4, 0.4)]);
        let macros = adjacent_grid_clusters(&model, 0.5);
        assert_eq!(macros.len(), 1);
        let c = &macros.centroids[0];
        assert!((c[0] - 0.3).abs() < 1e-12);
        assert!((c[1] - 0.3).abs() < 1e-12);
    }
}

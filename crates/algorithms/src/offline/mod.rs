//! The offline phase: batch macro-clustering over micro-cluster snapshots.
//!
//! The online phase maintains micro-clusters; "the final clustering results
//! can be generated directly from the micro-clusters using batch-mode
//! algorithms such as K-means and DBSCAN" (paper §II-B). CluStream and
//! ClusTree use weighted k-means over micro-cluster centroids; DenStream and
//! D-Stream group density-connected micro-clusters with DBSCAN.

mod dbscan;
mod grids;
mod kmeans;
mod parallel;

pub use dbscan::{dbscan, DbscanParams};
pub use grids::adjacent_grid_clusters;
pub use kmeans::{kmeans, KmeansParams};
pub use parallel::parallel_kmeans;

use diststream_core::WeightedPoint;
use diststream_types::Point;

/// The offline phase's output: macro-clusters, each a centroid plus the
/// indices of the micro-clusters it groups.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroClusters {
    /// One centroid per macro-cluster.
    pub centroids: Vec<Point>,
    /// For each input micro-cluster, the macro-cluster index it belongs to
    /// (`None` for DBSCAN noise).
    pub assignment: Vec<Option<usize>>,
}

impl MacroClusters {
    /// Number of macro-clusters.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Whether no macro-clusters were produced.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Index of the macro-cluster whose centroid is nearest to `point`, or
    /// `None` when there are no clusters.
    pub fn nearest(&self, point: &Point) -> Option<usize> {
        self.centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.squared_distance(point)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
    }
}

pub(crate) fn weighted_mean(points: &[WeightedPoint], members: &[usize]) -> Option<Point> {
    let mut total = 0.0;
    let mut sum: Option<Point> = None;
    for &i in members {
        let wp = &points[i];
        total += wp.weight;
        match &mut sum {
            // `a + b*w` in place: bit-identical to adding `point.scaled(w)`
            // without allocating the scaled copy per member.
            Some(s) => s.add_scaled_in_place(&wp.point, wp.weight),
            None => sum = Some(wp.point.scaled(wp.weight)),
        }
    }
    sum.map(|mut s| {
        if total > 0.0 {
            s.scale_in_place(1.0 / total);
        }
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nearest_picks_closest_centroid() {
        let mc = MacroClusters {
            centroids: vec![Point::from(vec![0.0]), Point::from(vec![10.0])],
            assignment: vec![Some(0), Some(1)],
        };
        assert_eq!(mc.nearest(&Point::from(vec![2.0])), Some(0));
        assert_eq!(mc.nearest(&Point::from(vec![8.0])), Some(1));
        assert_eq!(mc.len(), 2);
    }

    #[test]
    fn nearest_on_empty_is_none() {
        let mc = MacroClusters {
            centroids: vec![],
            assignment: vec![],
        };
        assert!(mc.is_empty());
        assert_eq!(mc.nearest(&Point::from(vec![0.0])), None);
    }

    proptest! {
        /// The in-place mean must be bit-identical to the allocating form it
        /// replaced: `sum += point.scaled(w)` then `sum.scaled(1/total)`.
        #[test]
        fn prop_weighted_mean_matches_allocating_form_bits(
            xs in prop::collection::vec(-100.0_f64..100.0, 1..20),
        ) {
            let points: Vec<WeightedPoint> = xs
                .iter()
                .enumerate()
                .map(|(i, &x)| WeightedPoint {
                    point: Point::from(vec![x, -x * 0.5]),
                    weight: 0.25 + (i % 4) as f64,
                })
                .collect();
            let members: Vec<usize> = (0..points.len()).collect();

            let mut total = 0.0;
            let mut sum: Option<Point> = None;
            for &i in &members {
                let wp = &points[i];
                total += wp.weight;
                match &mut sum {
                    Some(s) => s.add_in_place(&wp.point.scaled(wp.weight)),
                    None => sum = Some(wp.point.scaled(wp.weight)),
                }
            }
            let reference = sum.map(|s| if total > 0.0 { s.scaled(1.0 / total) } else { s });

            let fast = weighted_mean(&points, &members);
            let (fast, reference) = (fast.unwrap(), reference.unwrap());
            for (a, b) in fast.iter().zip(reference.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let points = vec![
            WeightedPoint {
                point: Point::from(vec![0.0]),
                weight: 3.0,
            },
            WeightedPoint {
                point: Point::from(vec![4.0]),
                weight: 1.0,
            },
        ];
        let mean = weighted_mean(&points, &[0, 1]).unwrap();
        assert_eq!(mean.as_slice(), &[1.0]);
        assert!(weighted_mean(&points, &[]).is_none());
    }
}

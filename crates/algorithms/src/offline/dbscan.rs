//! Weighted DBSCAN over micro-cluster centroids.

use diststream_core::WeightedPoint;
use diststream_types::Point;

use super::{weighted_mean, MacroClusters};

/// Parameters for weighted DBSCAN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighborhood radius `ε`.
    pub eps: f64,
    /// Minimum summed weight of an ε-neighborhood (including the point
    /// itself) for a core point — the weighted analog of `minPts`.
    pub min_weight: f64,
}

/// Density-based macro-clustering of micro-clusters.
///
/// DenStream's offline phase treats potential micro-clusters "with high
/// temporal localities as density-connected micro-clusters and groups them
/// together to find arbitrary shapes of clusters". Micro-cluster weights
/// stand in for point counts: a centroid is *core* when the summed weight
/// within `eps` reaches `min_weight`; clusters grow by expanding from core
/// points; non-core, non-reachable points become noise (`None`).
///
/// # Examples
///
/// ```
/// use diststream_algorithms::offline::{dbscan, DbscanParams};
/// use diststream_core::WeightedPoint;
/// use diststream_types::Point;
///
/// let pts: Vec<WeightedPoint> = [0.0, 0.5, 1.0, 50.0]
///     .iter()
///     .map(|&x| WeightedPoint { point: Point::from(vec![x]), weight: 2.0 })
///     .collect();
/// let clusters = dbscan(&pts, DbscanParams { eps: 1.0, min_weight: 4.0 });
/// assert_eq!(clusters.len(), 1);           // one dense chain
/// assert_eq!(clusters.assignment[3], None); // the distant point is noise
/// ```
pub fn dbscan(points: &[WeightedPoint], params: DbscanParams) -> MacroClusters {
    let n = points.len();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let eps2 = params.eps * params.eps;

    let neighbors = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| points[i].point.squared_distance(&points[j].point) <= eps2)
            .collect()
    };
    let neighborhood_weight =
        |idx: &[usize]| -> f64 { idx.iter().map(|&j| points[j].weight).sum() };

    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let seed_neighbors = neighbors(start);
        if neighborhood_weight(&seed_neighbors) < params.min_weight {
            continue; // Not a core point (may later be claimed as a border).
        }
        let cluster_id = clusters.len();
        let mut members = Vec::new();
        let mut queue = std::collections::VecDeque::from(seed_neighbors);
        assignment[start] = Some(cluster_id);
        members.push(start);
        while let Some(j) = queue.pop_front() {
            if assignment[j].is_none() {
                assignment[j] = Some(cluster_id);
                members.push(j);
            }
            if !visited[j] {
                visited[j] = true;
                let nb = neighbors(j);
                if neighborhood_weight(&nb) >= params.min_weight {
                    queue.extend(nb);
                }
            }
        }
        clusters.push(members);
    }

    // Every cluster holds at least its core point, so `weighted_mean` is
    // always `Some`; the zero-point fallback keeps centroid indices aligned
    // with the `assignment` cluster ids without a panic path.
    let dims = points.first().map_or(0, |wp| wp.point.dims());
    let centroids = clusters
        .iter()
        .map(|members| weighted_mean(points, members).unwrap_or_else(|| Point::zeros(dims)))
        .collect();
    MacroClusters {
        centroids,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diststream_types::Point;
    use proptest::prelude::*;

    fn wp(x: f64, y: f64, w: f64) -> WeightedPoint {
        WeightedPoint {
            point: Point::from(vec![x, y]),
            weight: w,
        }
    }

    #[test]
    fn empty_input() {
        let out = dbscan(
            &[],
            DbscanParams {
                eps: 1.0,
                min_weight: 1.0,
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn finds_arbitrary_shapes() {
        // An L-shaped chain is one cluster even though its endpoints are far
        // apart — the property DenStream's offline phase relies on.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(wp(i as f64, 0.0, 2.0));
        }
        for i in 1..10 {
            pts.push(wp(9.0, i as f64, 2.0));
        }
        let out = dbscan(
            &pts,
            DbscanParams {
                eps: 1.1,
                min_weight: 4.0,
            },
        );
        assert_eq!(out.len(), 1);
        assert!(out.assignment.iter().all(|a| a == &Some(0)));
    }

    #[test]
    fn separates_distant_groups_and_noise() {
        let pts = vec![
            wp(0.0, 0.0, 3.0),
            wp(0.5, 0.0, 3.0),
            wp(10.0, 0.0, 3.0),
            wp(10.5, 0.0, 3.0),
            wp(100.0, 0.0, 1.0), // lonely light point → noise
        ];
        let out = dbscan(
            &pts,
            DbscanParams {
                eps: 1.0,
                min_weight: 5.0,
            },
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.assignment[0], out.assignment[1]);
        assert_eq!(out.assignment[2], out.assignment[3]);
        assert_ne!(out.assignment[0], out.assignment[2]);
        assert_eq!(out.assignment[4], None);
    }

    #[test]
    fn weight_threshold_respects_weights() {
        // Two points each of weight 10 form a core neighborhood even though
        // there are only two of them.
        let pts = vec![wp(0.0, 0.0, 10.0), wp(0.5, 0.0, 10.0)];
        let out = dbscan(
            &pts,
            DbscanParams {
                eps: 1.0,
                min_weight: 15.0,
            },
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn border_points_join_but_do_not_expand() {
        // Light border point adjacent to a heavy core joins the cluster; a
        // point outside every core neighborhood stays noise.
        let pts = vec![
            wp(0.0, 0.0, 12.0),
            wp(0.9, 0.0, 1.0), // border (its own hood holds the core, so it is core too)
            wp(2.5, 0.0, 1.0), // out of reach of both → noise
        ];
        let out = dbscan(
            &pts,
            DbscanParams {
                eps: 1.0,
                min_weight: 12.0,
            },
        );
        assert_eq!(out.assignment[0], Some(0));
        assert_eq!(out.assignment[1], Some(0));
        assert_eq!(out.assignment[2], None);
    }

    proptest! {
        #[test]
        fn prop_assignments_in_range(
            xs in prop::collection::vec((-50.0_f64..50.0, -50.0_f64..50.0), 0..40),
        ) {
            let pts: Vec<WeightedPoint> = xs.iter().map(|&(x, y)| wp(x, y, 1.0)).collect();
            let out = dbscan(&pts, DbscanParams { eps: 5.0, min_weight: 2.0 });
            for a in out.assignment.iter().flatten() {
                prop_assert!(*a < out.len());
            }
        }

        #[test]
        fn prop_every_cluster_nonempty(
            xs in prop::collection::vec((-50.0_f64..50.0, -50.0_f64..50.0), 0..40),
        ) {
            let pts: Vec<WeightedPoint> = xs.iter().map(|&(x, y)| wp(x, y, 1.0)).collect();
            let out = dbscan(&pts, DbscanParams { eps: 5.0, min_weight: 2.0 });
            for c in 0..out.len() {
                prop_assert!(out.assignment.iter().any(|a| a == &Some(c)));
            }
        }
    }
}

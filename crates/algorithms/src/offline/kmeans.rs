//! Weighted k-means++ over micro-cluster centroids.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use diststream_core::WeightedPoint;
use diststream_types::Point;

use super::{weighted_mean, MacroClusters};
use crate::cf::CentroidKernel;

/// Parameters for weighted k-means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmeansParams {
    /// Number of macro-clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl KmeansParams {
    /// Paper-style defaults: 100 Lloyd iterations, fixed seed.
    pub fn new(k: usize) -> Self {
        KmeansParams {
            k,
            max_iters: 100,
            seed: 0x5EED,
        }
    }
}

/// Weighted k-means with k-means++ seeding.
///
/// Each input carries a weight (the micro-cluster's decayed weight); both
/// seeding probabilities and the Lloyd centroid step are weight-aware, so a
/// heavy micro-cluster pulls macro-centroids exactly as the records it
/// summarizes would have.
///
/// If fewer than `k` distinct points exist, fewer than `k` clusters are
/// returned. An empty input yields an empty result.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::offline::{kmeans, KmeansParams};
/// use diststream_core::WeightedPoint;
/// use diststream_types::Point;
///
/// let pts: Vec<WeightedPoint> = [0.0, 0.2, 9.8, 10.0]
///     .iter()
///     .map(|&x| WeightedPoint { point: Point::from(vec![x]), weight: 1.0 })
///     .collect();
/// let clusters = kmeans(&pts, KmeansParams::new(2));
/// assert_eq!(clusters.len(), 2);
/// assert_eq!(clusters.assignment[0], clusters.assignment[1]);
/// assert_ne!(clusters.assignment[0], clusters.assignment[3]);
/// ```
pub fn kmeans(points: &[WeightedPoint], params: KmeansParams) -> MacroClusters {
    if points.is_empty() || params.k == 0 {
        return MacroClusters {
            centroids: Vec::new(),
            assignment: vec![None; points.len()],
        };
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut centroids = plus_plus_seeds(points, params.k, &mut rng);

    // Scratch reused across Lloyd iterations: the SoA kernel holding the
    // flattened centroids, and the per-cluster member lists. The kernel's
    // strict-`<` index-order scan keeps the earliest of tied rows — the same
    // winner as the `min_by(total_cmp)` reference scan (tests compare the
    // two bit-for-bit).
    let mut kernel = CentroidKernel::with_capacity(centroids.len(), points[0].point.dims());
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); centroids.len()];
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..params.max_iters {
        kernel.clear();
        for (c, centroid) in centroids.iter().enumerate() {
            kernel.push_point(c as u64, centroid);
        }
        // Assign step.
        let mut changed = false;
        for (i, wp) in points.iter().enumerate() {
            // k >= 1 and points is non-empty here, so the kernel always has
            // a centroid; keep the previous assignment if it somehow does not.
            let Some((nearest, _)) = kernel.nearest_squared(&wp.point) else {
                continue;
            };
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed = true;
            }
        }
        // Update step.
        for m in &mut members {
            m.clear();
        }
        for (i, &c) in assignment.iter().enumerate() {
            members[c].push(i);
        }
        for (c, m) in members.iter().enumerate() {
            if let Some(mean) = weighted_mean(points, m) {
                centroids[c] = mean;
            }
        }
        if !changed {
            break;
        }
    }

    // Drop empty clusters and compact indices.
    let mut used: Vec<usize> = assignment.clone();
    used.sort_unstable();
    used.dedup();
    let remap: std::collections::BTreeMap<usize, usize> = used
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    MacroClusters {
        centroids: used.iter().map(|&c| centroids[c].clone()).collect(),
        assignment: assignment.into_iter().map(|c| Some(remap[&c])).collect(),
    }
}

/// Weighted k-means++ seeding: the first seed is drawn by weight, each
/// subsequent seed with probability proportional to `w · D(x)²`.
pub(crate) fn plus_plus_seeds(points: &[WeightedPoint], k: usize, rng: &mut StdRng) -> Vec<Point> {
    let mut centroids = Vec::with_capacity(k.min(points.len()));
    let total_weight: f64 = points.iter().map(|p| p.weight).sum();
    let first = weighted_index(points.iter().map(|p| p.weight), total_weight, rng);
    centroids.push(points[first].point.clone());

    while centroids.len() < k.min(points.len()) {
        let dists: Vec<f64> = points
            .iter()
            .map(|wp| {
                let d = centroids
                    .iter()
                    .map(|c| c.squared_distance(&wp.point))
                    .fold(f64::INFINITY, f64::min);
                d * wp.weight.max(0.0)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            break; // All remaining points coincide with a centroid.
        }
        let next = weighted_index(dists.iter().copied(), total, rng);
        centroids.push(points[next].point.clone());
    }
    centroids
}

fn weighted_index(weights: impl Iterator<Item = f64>, total: f64, rng: &mut StdRng) -> usize {
    debug_assert!(total > 0.0);
    let mut target = rng.gen_range(0.0..total);
    let mut last = 0;
    for (i, w) in weights.enumerate() {
        last = i;
        if target < w {
            return i;
        }
        target -= w;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn wp(x: f64, w: f64) -> WeightedPoint {
        WeightedPoint {
            point: Point::from(vec![x]),
            weight: w,
        }
    }

    /// The pre-kernel reference scan: index-order `min_by(total_cmp)`, which
    /// keeps the first of equally-minimal centroids.
    fn naive_nearest_centroid(centroids: &[Point], point: &Point) -> usize {
        centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.squared_distance(point)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("at least one centroid")
    }

    /// The pre-kernel Lloyd loop, kept verbatim as the bit-exactness oracle
    /// for [`kmeans`]: same seeding, naive assignment scan, fresh member
    /// vectors per iteration.
    fn naive_kmeans(points: &[WeightedPoint], params: KmeansParams) -> MacroClusters {
        if points.is_empty() || params.k == 0 {
            return MacroClusters {
                centroids: Vec::new(),
                assignment: vec![None; points.len()],
            };
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut centroids = plus_plus_seeds(points, params.k, &mut rng);
        let mut assignment = vec![0usize; points.len()];
        for _ in 0..params.max_iters {
            let mut changed = false;
            for (i, wp) in points.iter().enumerate() {
                let nearest = naive_nearest_centroid(&centroids, &wp.point);
                if assignment[i] != nearest {
                    assignment[i] = nearest;
                    changed = true;
                }
            }
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); centroids.len()];
            for (i, &c) in assignment.iter().enumerate() {
                members[c].push(i);
            }
            for (c, m) in members.iter().enumerate() {
                if let Some(mean) = weighted_mean(points, m) {
                    centroids[c] = mean;
                }
            }
            if !changed {
                break;
            }
        }
        let mut used: Vec<usize> = assignment.clone();
        used.sort_unstable();
        used.dedup();
        let remap: std::collections::BTreeMap<usize, usize> = used
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        MacroClusters {
            centroids: used.iter().map(|&c| centroids[c].clone()).collect(),
            assignment: assignment.into_iter().map(|c| Some(remap[&c])).collect(),
        }
    }

    #[test]
    fn empty_input_empty_output() {
        let out = kmeans(&[], KmeansParams::new(3));
        assert!(out.is_empty());
        assert!(out.assignment.is_empty());
    }

    #[test]
    fn k_zero_assigns_nothing() {
        let out = kmeans(&[wp(0.0, 1.0)], KmeansParams::new(0));
        assert!(out.is_empty());
        assert_eq!(out.assignment, vec![None]);
    }

    #[test]
    fn separates_two_obvious_groups() {
        let pts = vec![wp(0.0, 1.0), wp(0.5, 1.0), wp(20.0, 1.0), wp(20.5, 1.0)];
        let out = kmeans(&pts, KmeansParams::new(2));
        assert_eq!(out.len(), 2);
        assert_eq!(out.assignment[0], out.assignment[1]);
        assert_eq!(out.assignment[2], out.assignment[3]);
        assert_ne!(out.assignment[0], out.assignment[2]);
    }

    #[test]
    fn weights_pull_centroids() {
        // Heavy point at 0, light at 4, single cluster → centroid near 0.
        let pts = vec![wp(0.0, 99.0), wp(4.0, 1.0)];
        let out = kmeans(&pts, KmeansParams::new(1));
        assert_eq!(out.len(), 1);
        assert!((out.centroids[0].as_slice()[0] - 0.04).abs() < 1e-9);
    }

    #[test]
    fn fewer_distinct_points_than_k() {
        let pts = vec![wp(1.0, 1.0), wp(1.0, 1.0), wp(1.0, 1.0)];
        let out = kmeans(&pts, KmeansParams::new(3));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts: Vec<WeightedPoint> = (0..40).map(|i| wp((i % 7) as f64 * 3.0, 1.0)).collect();
        let a = kmeans(&pts, KmeansParams::new(4));
        let b = kmeans(&pts, KmeansParams::new(4));
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_every_point_assigned(
            xs in prop::collection::vec(-100.0_f64..100.0, 1..50),
            k in 1usize..6,
        ) {
            let pts: Vec<WeightedPoint> = xs.iter().map(|&x| wp(x, 1.0)).collect();
            let out = kmeans(&pts, KmeansParams::new(k));
            prop_assert_eq!(out.assignment.len(), pts.len());
            for a in &out.assignment {
                let a = a.expect("kmeans never produces noise");
                prop_assert!(a < out.len());
            }
            prop_assert!(out.len() <= k);
        }

        #[test]
        fn prop_kernel_lloyd_matches_naive_reference_bits(
            xs in prop::collection::vec(-50.0_f64..50.0, 2..40),
            k in 1usize..5,
        ) {
            let pts: Vec<WeightedPoint> = xs
                .iter()
                .enumerate()
                .map(|(i, &x)| wp(x, 1.0 + (i % 3) as f64))
                .collect();
            let params = KmeansParams::new(k);
            let fast = kmeans(&pts, params);
            let naive = naive_kmeans(&pts, params);
            prop_assert_eq!(&fast.assignment, &naive.assignment);
            prop_assert_eq!(fast.centroids.len(), naive.centroids.len());
            for (a, b) in fast.centroids.iter().zip(naive.centroids.iter()) {
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }

        #[test]
        fn prop_assignment_is_nearest_centroid(
            xs in prop::collection::vec(-100.0_f64..100.0, 2..40),
        ) {
            let pts: Vec<WeightedPoint> = xs.iter().map(|&x| wp(x, 1.0)).collect();
            let out = kmeans(&pts, KmeansParams::new(3));
            for (i, wp) in pts.iter().enumerate() {
                let assigned = out.assignment[i].unwrap();
                let assigned_d = out.centroids[assigned].squared_distance(&wp.point);
                for c in &out.centroids {
                    prop_assert!(assigned_d <= c.squared_distance(&wp.point) + 1e-9);
                }
            }
        }
    }
}

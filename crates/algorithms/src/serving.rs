//! Nearest-cluster predict over published [`ServingSnapshot`]s.
//!
//! A [`ServingPredictor`] is the read side of the online-serving path: it
//! owns a caching [`SnapshotReader`] plus a [`CentroidKernel`] rebuilt from
//! the snapshot's exported micro-clusters whenever the epoch advances.
//! Between publishes, a predict costs one atomic load plus one vectorized
//! kernel scan — no lock, no allocation, no driver contention — so many
//! predictor threads can serve queries while the stream executes.
//!
//! # Examples
//!
//! ```
//! use diststream_algorithms::{CluStream, CluStreamParams, ServingPredictor};
//! use diststream_core::{serving_handle, DistStreamJob, StreamClustering};
//! use diststream_engine::{ExecutionMode, StreamingContext, VecSource};
//! use diststream_types::{ClusteringConfig, Point, Record, Timestamp};
//!
//! let algo = CluStream::new(CluStreamParams { max_micro_clusters: 10, ..Default::default() });
//! let ctx = StreamingContext::new(2, ExecutionMode::Simulated)?;
//! let stream: Vec<Record> = (0..300)
//!     .map(|i| Record::new(i, Point::from(vec![(i % 3) as f64 * 9.0]), Timestamp::from_secs(i as f64 * 0.05)))
//!     .collect();
//! let handle = serving_handle();
//! let mut predictor = ServingPredictor::new(&handle);
//! assert!(predictor.predict(&Point::from(vec![0.1])).is_none(), "nothing published yet");
//!
//! let mut job = DistStreamJob::new(&algo, &ctx, ClusteringConfig::default());
//! job.init_records(30).serving(handle.clone());
//! job.run_to_end(VecSource::new(stream))?;
//!
//! let p = predictor.predict(&Point::from(vec![9.1])).expect("model published");
//! assert!(p.distance < 4.5, "query lands near the 9.0 cluster");
//! # Ok::<(), diststream_types::DistStreamError>(())
//! ```

use std::sync::Arc;

use diststream_core::{serving_reader, ServingHandle, ServingSnapshot};
use diststream_engine::SnapshotReader;
use diststream_types::Point;

use crate::cf::CentroidKernel;

/// Answer to one nearest-cluster predict query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Serving epoch (batch index) the answer was computed against.
    pub epoch: u64,
    /// Index of the nearest micro-cluster within the snapshot's
    /// [`centroids`](ServingSnapshot::centroids) export.
    pub cluster: usize,
    /// Euclidean distance from the query to that centroid.
    pub distance: f64,
    /// Temporal weight of the matched micro-cluster.
    pub weight: f64,
}

/// One thread's predict handle: caching snapshot reader + centroid kernel.
///
/// Cheap to clone-per-thread via [`ServingPredictor::new`] on a shared
/// [`ServingHandle`]; each predictor rebuilds its kernel independently on
/// epoch change, so readers never synchronize with each other either.
#[derive(Debug)]
pub struct ServingPredictor {
    reader: SnapshotReader<ServingSnapshot>,
    /// Epoch the kernel was built from (`None` = never built).
    kernel_epoch: Option<u64>,
    kernel: CentroidKernel,
}

impl ServingPredictor {
    /// Creates a predictor reading from `handle`.
    pub fn new(handle: &ServingHandle) -> Self {
        ServingPredictor {
            reader: serving_reader(handle),
            kernel_epoch: None,
            kernel: CentroidKernel::new(),
        }
    }

    /// Nearest micro-cluster to `query` in the latest published snapshot,
    /// or `None` while nothing has been published (or the snapshot exports
    /// no micro-clusters). The query must match the model's
    /// dimensionality.
    pub fn predict(&mut self, query: &Point) -> Option<Prediction> {
        let (epoch, snapshot) = {
            let (epoch, snapshot) = self.reader.current()?;
            (epoch, Arc::clone(snapshot))
        };
        if self.kernel_epoch != Some(epoch) {
            self.kernel.clear();
            for (idx, wp) in snapshot.centroids.iter().enumerate() {
                self.kernel.push_point(idx as u64, &wp.point);
            }
            self.kernel_epoch = Some(epoch);
        }
        let (cluster, distance) = self.kernel.nearest(query)?;
        let weight = snapshot.centroids.get(cluster)?.weight;
        Some(Prediction {
            epoch,
            cluster,
            distance,
            weight,
        })
    }

    /// The epoch of the snapshot the predictor last answered from.
    pub fn epoch(&self) -> Option<u64> {
        self.kernel_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diststream_core::serving_handle;
    use diststream_core::{ServingSnapshot, WeightedPoint};

    fn snap(epoch: u64, centers: &[(f64, f64)]) -> ServingSnapshot {
        ServingSnapshot {
            epoch,
            model_bytes: vec![epoch as u8],
            centroids: centers
                .iter()
                .map(|&(x, w)| WeightedPoint {
                    point: Point::from(vec![x]),
                    weight: w,
                })
                .collect(),
        }
    }

    #[test]
    fn predicts_nearest_and_tracks_epochs() {
        let handle = serving_handle();
        let mut predictor = ServingPredictor::new(&handle);
        assert!(predictor.predict(&Point::from(vec![0.0])).is_none());

        handle.publish(0, snap(0, &[(0.0, 2.0), (10.0, 5.0)]));
        let p = predictor.predict(&Point::from(vec![9.0])).unwrap();
        assert_eq!((p.epoch, p.cluster), (0, 1));
        assert_eq!(p.distance, 1.0);
        assert_eq!(p.weight, 5.0);

        // New epoch moves the second centroid; the kernel rebuilds.
        handle.publish(1, snap(1, &[(0.0, 2.0), (4.0, 7.0)]));
        let p = predictor.predict(&Point::from(vec![9.0])).unwrap();
        assert_eq!((p.epoch, p.cluster), (1, 1));
        assert_eq!(p.distance, 5.0);
        assert_eq!(p.weight, 7.0);
        assert_eq!(predictor.epoch(), Some(1));
    }

    #[test]
    fn empty_centroid_export_yields_none() {
        let handle = serving_handle();
        let mut predictor = ServingPredictor::new(&handle);
        handle.publish(0, snap(0, &[]));
        assert!(predictor.predict(&Point::from(vec![1.0])).is_none());
    }

    #[test]
    fn prediction_bits_match_naive_scan() {
        let centers: Vec<(f64, f64)> = (0..13).map(|i| (i as f64 * 1.7, 1.0)).collect();
        let handle = serving_handle();
        handle.publish(0, snap(0, &centers));
        let mut predictor = ServingPredictor::new(&handle);
        let query = Point::from(vec![7.3]);
        let p = predictor.predict(&query).unwrap();
        let (naive_idx, naive_d) = centers
            .iter()
            .enumerate()
            .map(|(i, &(x, _))| (i, Point::from(vec![x]).distance(&query)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(p.cluster, naive_idx);
        assert_eq!(p.distance.to_bits(), naive_d.to_bits());
    }
}

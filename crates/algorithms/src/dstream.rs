//! D-Stream (Chen & Tu, KDD 2007) on the DistStream APIs.
//!
//! D-Stream "partitions the feature space into grids (i.e., micro-clusters)
//! and groups the adjacent grids with high temporal locality and large
//! record counts as macro-clusters". Each record maps to the grid cell
//! containing it — an O(d) operation instead of an O(n·d) nearest-centroid
//! scan, which is why the paper measures 1.1–1.3× higher DistStream
//! throughput for D-Stream than for CluStream/DenStream (§VII-E).
//!
//! Grid densities decay exponentially; *sporadic* (low-density) grids are
//! removed periodically. The grid-cell hash doubles as the micro-cluster id
//! **and** as the [`Assignment::New`] coalescing key, so outlier records
//! landing in the same new cell coalesce into one grid within a batch.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use diststream_core::{Assignment, MicroClusterId, Sketch, StreamClustering, WeightedPoint};
use diststream_engine::{fnv1a_hash, Fnv1a};
use diststream_types::{DistStreamError, Point, Record, Result, Timestamp};

/// Tuning parameters for [`DStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DStreamParams {
    /// Grid cell width per dimension.
    pub cell_width: f64,
    /// Decay base `β` (> 1): densities decay as `β^{-Δt}`.
    pub beta: f64,
    /// Dense-grid threshold factor `C_m` (> 1).
    pub cm: f64,
    /// Sparse-grid threshold factor `C_l` (< 1).
    pub cl: f64,
    /// Estimated number of reachable grid cells `N` (the original D-Stream
    /// uses the full grid count; a sparse high-dimensional stream touches
    /// far fewer, so this is a parameter).
    pub expected_cells: usize,
    /// Seconds between sporadic-grid sweeps.
    pub prune_period_secs: f64,
    /// Number of leading dimensions used for grid mapping (`0` = all).
    ///
    /// Grid partitioning is infeasible in raw high-dimensional space (a
    /// 54-dimensional grid fragments every cluster into astronomically many
    /// cells), so — as grid-based stream clustering implementations
    /// commonly do — the cell index is computed on a leading subspace while
    /// records keep their full vectors.
    pub grid_dims: usize,
}

impl Default for DStreamParams {
    fn default() -> Self {
        DStreamParams {
            cell_width: 1.0,
            beta: 2f64.powf(0.25),
            cm: 3.0,
            cl: 0.8,
            expected_cells: 1000,
            prune_period_secs: 20.0,
            grid_dims: 0,
        }
    }
}

/// One grid cell: its (possibly projected) integer coordinates, the decayed
/// full-dimension linear sum of its records, and the decayed density.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSketch {
    /// Per-dimension cell indices over the gridded subspace.
    pub coords: Vec<i64>,
    /// Decayed linear sum of absorbed records (full dimensionality), so the
    /// centroid handed to the offline phase is the actual data mean, not
    /// the projected cell center.
    pub sum: Point,
    /// Decayed record density.
    pub density: f64,
    /// Creation time of the grid.
    pub created_at: Timestamp,
    /// Last insert/decay time.
    pub updated_at: Timestamp,
}

impl Sketch for GridSketch {
    fn centroid(&self) -> Point {
        if self.density > 0.0 {
            self.sum.scaled(1.0 / self.density)
        } else {
            self.sum.clone()
        }
    }

    fn weight(&self) -> f64 {
        self.density
    }

    fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.coords, other.coords, "only same-cell grids merge");
        self.sum.add_in_place(&other.sum);
        self.density += other.density;
        self.created_at = self.created_at.min(other.created_at);
        self.updated_at = self.updated_at.max(other.updated_at);
    }
}

/// The D-Stream model: the sparse set of non-empty grid cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DStreamModel {
    grids: BTreeMap<MicroClusterId, GridSketch>,
    last_prune_secs: f64,
}

impl DStreamModel {
    /// Number of non-empty grid cells.
    pub fn len(&self) -> usize {
        self.grids.len()
    }

    /// Whether no grid cells exist.
    pub fn is_empty(&self) -> bool {
        self.grids.is_empty()
    }

    /// Iterates over `(cell id, grid)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&MicroClusterId, &GridSketch)> {
        self.grids.iter()
    }
}

/// D-Stream implemented through the four DistStream APIs.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::{DStream, DStreamParams};
/// use diststream_core::{Assignment, StreamClustering};
/// use diststream_types::{Point, Record, Timestamp};
///
/// let algo = DStream::new(DStreamParams::default());
/// let model = algo.init(&[Record::new(0, Point::from(vec![0.2, 0.7]), Timestamp::ZERO)])?;
/// // A record in the same unit cell is absorbed; a distant one is new.
/// let same = Record::new(1, Point::from(vec![0.9, 0.1]), Timestamp::from_secs(1.0));
/// assert!(matches!(algo.assign(&model, &same), Assignment::Existing(_)));
/// let far = Record::new(2, Point::from(vec![5.0, 5.0]), Timestamp::from_secs(2.0));
/// assert!(matches!(algo.assign(&model, &far), Assignment::New(_)));
/// # Ok::<(), diststream_types::DistStreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DStream {
    params: DStreamParams,
}

impl DStream {
    /// Creates D-Stream with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width ≤ 0`, `beta ≤ 1`, or the threshold factors are
    /// inconsistent (`cm ≤ cl`).
    pub fn new(params: DStreamParams) -> Self {
        assert!(params.cell_width > 0.0, "cell width must be positive");
        assert!(params.beta > 1.0, "decay base must exceed 1");
        assert!(
            params.cm > params.cl && params.cl > 0.0,
            "dense threshold must exceed sparse threshold"
        );
        DStream { params }
    }

    /// The active parameters.
    pub fn params(&self) -> &DStreamParams {
        &self.params
    }

    /// The integer cell coordinates containing `point` (over the gridded
    /// subspace when `grid_dims > 0`).
    pub fn cell_of(&self, point: &Point) -> Vec<i64> {
        let dims = match self.params.grid_dims {
            0 => point.dims(),
            g => g.min(point.dims()),
        };
        point
            .iter()
            .take(dims)
            .map(|&x| (x / self.params.cell_width).floor() as i64)
            .collect()
    }

    /// Deterministic cell id (FNV-1a over the coordinate bytes).
    pub fn cell_id(coords: &[i64]) -> MicroClusterId {
        let mut bytes = Vec::with_capacity(coords.len() * 8);
        for c in coords {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        fnv1a_hash(&bytes)
    }

    /// The cell id of the cell containing `point`, fused into one pass:
    /// equivalent to `Self::cell_id(&self.cell_of(point))` but hashing each
    /// coordinate incrementally, so the per-record grid lookup allocates
    /// nothing.
    pub fn cell_key(&self, point: &Point) -> MicroClusterId {
        let dims = match self.params.grid_dims {
            0 => point.dims(),
            g => g.min(point.dims()),
        };
        let mut hash = Fnv1a::new();
        for &x in point.iter().take(dims) {
            let c = (x / self.params.cell_width).floor() as i64;
            hash.write(&c.to_le_bytes());
        }
        hash.finish()
    }

    fn lambda(&self, dt: f64) -> f64 {
        self.params.beta.powf(-dt)
    }

    /// The steady-state total density `1 / (1 − λ₁)` where `λ₁` is the
    /// one-second decay factor.
    fn density_scale(&self) -> f64 {
        1.0 / (1.0 - self.lambda(1.0))
    }

    /// Density above which a grid is *dense*: `C_m / (N·(1 − λ₁))`.
    pub fn dense_threshold(&self) -> f64 {
        self.params.cm * self.density_scale() / self.params.expected_cells as f64
    }

    /// Density below which a grid is *sparse*: `C_l / (N·(1 − λ₁))`.
    pub fn sparse_threshold(&self) -> f64 {
        self.params.cl * self.density_scale() / self.params.expected_cells as f64
    }

    fn sketch_for(&self, record: &Record) -> GridSketch {
        let coords = self.cell_of(&record.point);
        GridSketch {
            coords,
            sum: record.point.clone(),
            density: 1.0,
            created_at: record.timestamp,
            updated_at: record.timestamp,
        }
    }
}

impl StreamClustering for DStream {
    type Model = DStreamModel;
    type Sketch = GridSketch;

    fn name(&self) -> &str {
        "dstream"
    }

    fn init(&self, records: &[Record]) -> Result<DStreamModel> {
        if records.is_empty() {
            return Err(DistStreamError::EmptyStream);
        }
        let mut model = DStreamModel::default();
        for record in records {
            let id = self.cell_key(&record.point);
            match model.grids.get_mut(&id) {
                Some(grid) => {
                    let mut sketch = grid.clone();
                    self.update(&mut sketch, record);
                    *grid = sketch;
                }
                None => {
                    model.grids.insert(id, self.sketch_for(record));
                }
            }
        }
        Ok(model)
    }

    fn assign(&self, model: &DStreamModel, record: &Record) -> Assignment {
        // Grid mapping: O(d), no distance scan, no allocation.
        let id = self.cell_key(&record.point);
        if model.grids.contains_key(&id) {
            Assignment::Existing(id)
        } else {
            // The cell id is the coalescing key: same-cell outliers in a
            // batch become one new grid.
            Assignment::New(id)
        }
    }

    fn sketch_of(&self, model: &DStreamModel, id: MicroClusterId) -> GridSketch {
        model.grids[&id].clone()
    }

    fn create(&self, record: &Record) -> GridSketch {
        self.sketch_for(record)
    }

    fn update(&self, sketch: &mut GridSketch, record: &Record) {
        let dt = record.timestamp.saturating_since(sketch.updated_at);
        let lambda = self.lambda(dt);
        sketch.sum.scale_in_place(lambda);
        sketch.sum.add_in_place(&record.point);
        sketch.density = sketch.density * lambda + 1.0;
        sketch.updated_at = record.timestamp.max(sketch.updated_at);
    }

    // D-Stream needs no distance-based pre-merge: same-cell coalescing is
    // exact via the cell-id coalescing key, and distinct cells never merge
    // online. The default `can_premerge` (false) is correct.

    fn apply_global(
        &self,
        model: &mut DStreamModel,
        updated: Vec<(MicroClusterId, GridSketch)>,
        created: Vec<GridSketch>,
        now: Timestamp,
    ) -> Result<()> {
        for (id, sketch) in updated {
            model.grids.insert(id, sketch);
        }
        for sketch in created {
            let id = Self::cell_id(&sketch.coords);
            match model.grids.get_mut(&id) {
                Some(existing) => existing.merge(&sketch),
                None => {
                    model.grids.insert(id, sketch);
                }
            }
        }
        // Periodic sporadic-grid sweep; untouched grids are decayed lazily
        // here rather than on every call (the one-record-at-a-time baseline
        // would otherwise pay O(cells) per record).
        if now.secs() - model.last_prune_secs >= self.params.prune_period_secs {
            for grid in model.grids.values_mut() {
                let dt = now.saturating_since(grid.updated_at);
                if dt > 0.0 {
                    let lambda = self.lambda(dt);
                    grid.sum.scale_in_place(lambda);
                    grid.density *= lambda;
                    grid.updated_at = now;
                }
            }
            let sparse = self.sparse_threshold();
            model.grids.retain(|_, g| g.density >= sparse);
            model.last_prune_secs = now.secs();
        }
        Ok(())
    }

    fn snapshot(&self, model: &DStreamModel) -> Vec<WeightedPoint> {
        model
            .grids
            .values()
            .map(|g| WeightedPoint {
                point: Sketch::centroid(g),
                weight: g.density,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, coords: Vec<f64>, t: f64) -> Record {
        Record::new(id, Point::from(coords), Timestamp::from_secs(t))
    }

    fn algo() -> DStream {
        DStream::new(DStreamParams::default())
    }

    #[test]
    fn cell_mapping_floors_coordinates() {
        let a = algo();
        assert_eq!(
            a.cell_of(&Point::from(vec![0.4, 1.7, -0.3])),
            vec![0, 1, -1]
        );
    }

    #[test]
    fn same_cell_same_id() {
        let a = algo();
        let c1 = a.cell_of(&Point::from(vec![0.1, 0.9]));
        let c2 = a.cell_of(&Point::from(vec![0.8, 0.2]));
        assert_eq!(DStream::cell_id(&c1), DStream::cell_id(&c2));
        let c3 = a.cell_of(&Point::from(vec![1.1, 0.2]));
        assert_ne!(DStream::cell_id(&c1), DStream::cell_id(&c3));
    }

    #[test]
    fn cell_key_matches_two_step_lookup() {
        for grid_dims in [0, 1, 2] {
            let a = DStream::new(DStreamParams {
                grid_dims,
                cell_width: 0.7,
                ..Default::default()
            });
            for i in 0..50 {
                let p = Point::from(vec![
                    (i as f64) * 0.31 - 5.0,
                    (i as f64) * -1.7,
                    (i % 7) as f64,
                ]);
                assert_eq!(
                    a.cell_key(&p),
                    DStream::cell_id(&a.cell_of(&p)),
                    "grid_dims={grid_dims} i={i}"
                );
            }
        }
    }

    #[test]
    fn assign_uses_grid_mapping() {
        let a = algo();
        let model = a.init(&[rec(0, vec![0.5], 0.0)]).unwrap();
        assert!(matches!(
            a.assign(&model, &rec(1, vec![0.2], 1.0)),
            Assignment::Existing(_)
        ));
        // New cell: the coalescing key equals the would-be cell id.
        let far = rec(2, vec![7.5], 1.0);
        let expected_id = DStream::cell_id(&a.cell_of(&far.point));
        assert_eq!(a.assign(&model, &far), Assignment::New(expected_id));
    }

    #[test]
    fn update_decays_density() {
        let a = algo();
        let mut g = a.create(&rec(0, vec![0.5], 0.0));
        a.update(&mut g, &rec(1, vec![0.6], 4.0));
        // λ(4) = 0.5 → density 1×0.5 + 1 = 1.5.
        assert!((g.density - 1.5).abs() < 1e-12);
    }

    #[test]
    fn created_same_cell_merges_in_global() {
        let a = algo();
        let mut model = a.init(&[rec(0, vec![0.5], 0.0)]).unwrap();
        let g1 = a.create(&rec(1, vec![5.5], 1.0));
        let g2 = a.create(&rec(2, vec![5.6], 1.0));
        a.apply_global(&mut model, vec![], vec![g1, g2], Timestamp::from_secs(1.0))
            .unwrap();
        assert_eq!(model.len(), 2);
        let merged = model
            .iter()
            .find(|(_, g)| g.coords == vec![5])
            .expect("cell 5 exists");
        assert!((merged.1.density - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sporadic_grids_pruned() {
        let a = algo();
        let mut model = a.init(&[rec(0, vec![0.5], 0.0)]).unwrap();
        // Far in the future, past the prune period: density has decayed to
        // ~0, below the sparse threshold.
        a.apply_global(&mut model, vec![], vec![], Timestamp::from_secs(200.0))
            .unwrap();
        assert!(model.is_empty());
    }

    #[test]
    fn thresholds_are_ordered() {
        let a = algo();
        assert!(a.dense_threshold() > a.sparse_threshold());
        assert!(a.sparse_threshold() > 0.0);
    }

    #[test]
    fn centroid_is_record_mean() {
        let a = algo();
        let mut g = a.create(&rec(0, vec![2.3, -0.7], 0.0));
        a.update(&mut g, &rec(1, vec![2.7, -0.3], 0.0));
        assert_eq!(g.centroid().as_slice(), &[2.5, -0.5]);
    }

    #[test]
    fn projected_grid_keeps_full_dim_centroid() {
        let a = DStream::new(DStreamParams {
            grid_dims: 1,
            ..Default::default()
        });
        // Same leading coordinate → same cell, even though dim 2 differs.
        let model = a.init(&[rec(0, vec![0.5, 100.0], 0.0)]).unwrap();
        assert!(matches!(
            a.assign(&model, &rec(1, vec![0.4, -100.0], 1.0)),
            Assignment::Existing(_)
        ));
        // Centroid carries both dimensions.
        let (_, g) = model.iter().next().unwrap();
        assert_eq!(g.centroid().dims(), 2);
    }

    #[test]
    fn snapshot_weights_are_densities() {
        let a = algo();
        let model = a
            .init(&[rec(0, vec![0.5], 0.0), rec(1, vec![0.6], 0.0)])
            .unwrap();
        let snap = a.snapshot(&model);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].weight, 2.0);
    }

    #[test]
    #[should_panic(expected = "dense threshold")]
    fn rejects_inverted_thresholds() {
        let _ = DStream::new(DStreamParams {
            cm: 0.5,
            cl: 0.8,
            ..Default::default()
        });
    }
}

//! The four representative stream clustering algorithms of the DistStream
//! evaluation — CluStream, DenStream, D-Stream, and ClusTree — implemented
//! from scratch on the DistStream four-API framework, plus the offline
//! (macro-clustering) phase.
//!
//! | Algorithm | Family | Sketch | Closest-search |
//! |---|---|---|---|
//! | [`CluStream`] | partition-based | CF vector, no decay, relevance deletion | linear centroid scan |
//! | [`DenStream`] | density-based | decayed CF, potential/outlier roles | linear scan, potential first |
//! | [`DStream`] | grid-based | decayed grid densities | O(d) grid mapping |
//! | [`ClusTree`] | hierarchical | decayed CF in a CF-tree | greedy tree descent |
//!
//! All four plug into `diststream_core`'s executors unchanged; the offline
//! phase ([`offline::kmeans`], [`offline::dbscan`]) turns any model's
//! snapshot into macro-clusters.
//!
//! # Examples
//!
//! ```
//! use diststream_algorithms::{CluStream, CluStreamParams};
//! use diststream_algorithms::offline::{kmeans, KmeansParams};
//! use diststream_core::{DistStreamJob, StreamClustering};
//! use diststream_engine::{ExecutionMode, StreamingContext, VecSource};
//! use diststream_types::{ClusteringConfig, Point, Record, Timestamp};
//!
//! let algo = CluStream::new(CluStreamParams { max_micro_clusters: 20, ..Default::default() });
//! let ctx = StreamingContext::new(2, ExecutionMode::Simulated)?;
//! let stream: Vec<Record> = (0..400)
//!     .map(|i| Record::new(i, Point::from(vec![(i % 4) as f64 * 8.0]), Timestamp::from_secs(i as f64 * 0.05)))
//!     .collect();
//! let result = DistStreamJob::new(&algo, &ctx, ClusteringConfig::default())
//!     .init_records(40)
//!     .run_to_end(VecSource::new(stream))?;
//! // Offline phase: k-means over the final micro-clusters.
//! let macros = kmeans(&algo.snapshot(&result.model), KmeansParams::new(4));
//! assert_eq!(macros.len(), 4);
//! # Ok::<(), diststream_types::DistStreamError>(())
//! ```

#![forbid(unsafe_code)]

mod cf;
mod cftree;
mod clustream;
mod clustree;
mod denstream;
mod dstream;
pub mod offline;
mod serving;
mod streamkm;

pub use cf::{CentroidKernel, CfVector};
pub use cftree::CfTree;
pub use clustream::{CluStream, CluStreamModel, CluStreamParams};
pub use clustree::{ClusTree, ClusTreeModel, ClusTreeParams};
pub use denstream::{DenStream, DenStreamMc, DenStreamModel, DenStreamParams};
pub use dstream::{DStream, DStreamModel, DStreamParams, GridSketch};
pub use serving::{Prediction, ServingPredictor};
pub use streamkm::{StreamKMeans, StreamKMeansModel, StreamKMeansParams};

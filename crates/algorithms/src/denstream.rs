//! DenStream (Cao et al., SDM 2006) on the DistStream APIs.
//!
//! DenStream maintains exponentially decayed micro-clusters in two roles:
//! *potential* micro-clusters (weight ≥ β_p·μ) that feed the offline DBSCAN
//! phase, and *outlier* micro-clusters buffering possible new clusters.
//! A record joins the nearest micro-cluster if the tentative insertion keeps
//! the radius within `ε`; otherwise it founds a new outlier micro-cluster.
//! Every `T_p` seconds, light potential micro-clusters and stale outlier
//! micro-clusters are pruned.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use diststream_core::{Assignment, MicroClusterId, Searcher, StreamClustering, WeightedPoint};
use diststream_types::{DistStreamError, Record, Result, Timestamp};

use crate::cf::{CentroidKernel, CfVector};

/// Tuning parameters for [`DenStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenStreamParams {
    /// Decay base `β` (> 1): weights decay as `β^{-Δt}`. The paper sets
    /// `β = 2^{0.25} ≈ 1.19`.
    pub beta: f64,
    /// Radius threshold `ε`: the maximum micro-cluster radius.
    pub eps: f64,
    /// Core weight threshold `μ` (paper default 10).
    pub mu: f64,
    /// Potential factor `β_p ∈ (0, 1]`: a micro-cluster is *potential* when
    /// its weight reaches `β_p·μ`.
    pub potential_factor: f64,
}

impl Default for DenStreamParams {
    fn default() -> Self {
        DenStreamParams {
            beta: 2f64.powf(0.25),
            eps: 1.0,
            mu: 10.0,
            potential_factor: 0.2,
        }
    }
}

impl DenStreamParams {
    /// The pruning period `T_p = ⌈log_β(β_p·μ / (β_p·μ − 1))⌉` from the
    /// DenStream paper: the minimal time for a potential micro-cluster that
    /// stops receiving records to fall below the potential threshold.
    pub fn prune_period_secs(&self) -> f64 {
        let bm = self.potential_factor * self.mu;
        if bm <= 1.0 {
            return 1.0;
        }
        ((bm / (bm - 1.0)).ln() / self.beta.ln()).ceil().max(1.0)
    }
}

/// One DenStream micro-cluster: a decayed CF vector plus its role.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenStreamMc {
    /// The decayed CF sketch.
    pub cf: CfVector,
    /// `true` for potential micro-clusters, `false` for outlier buffers.
    pub potential: bool,
}

/// The DenStream model: decayed micro-clusters in potential/outlier roles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DenStreamModel {
    mcs: BTreeMap<MicroClusterId, DenStreamMc>,
    next_id: MicroClusterId,
    last_prune_secs: f64,
}

impl DenStreamModel {
    /// Total number of micro-clusters (both roles).
    pub fn len(&self) -> usize {
        self.mcs.len()
    }

    /// Whether the model holds no micro-clusters.
    pub fn is_empty(&self) -> bool {
        self.mcs.is_empty()
    }

    /// Number of potential micro-clusters.
    pub fn potential_count(&self) -> usize {
        self.mcs.values().filter(|m| m.potential).count()
    }

    /// Number of outlier micro-clusters.
    pub fn outlier_count(&self) -> usize {
        self.len() - self.potential_count()
    }

    /// Iterates over `(id, micro-cluster)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&MicroClusterId, &DenStreamMc)> {
        self.mcs.iter()
    }

    fn insert_new(&mut self, mc: DenStreamMc) -> MicroClusterId {
        let id = self.next_id;
        self.next_id += 1;
        self.mcs.insert(id, mc);
        id
    }
}

/// DenStream implemented through the four DistStream APIs.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::{DenStream, DenStreamParams};
/// use diststream_core::StreamClustering;
/// use diststream_types::{Point, Record, Timestamp};
///
/// let algo = DenStream::new(DenStreamParams::default());
/// let init: Vec<Record> = (0..30)
///     .map(|i| Record::new(i, Point::from(vec![(i % 2) as f64 * 8.0]), Timestamp::from_secs(i as f64 * 0.1)))
///     .collect();
/// let model = algo.init(&init)?;
/// assert!(model.potential_count() >= 1);
/// # Ok::<(), diststream_types::DistStreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DenStream {
    params: DenStreamParams,
}

impl DenStream {
    /// Creates DenStream with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `beta ≤ 1`, `eps ≤ 0`, `mu ≤ 0`, or `potential_factor`
    /// is outside `(0, 1]`.
    pub fn new(params: DenStreamParams) -> Self {
        assert!(params.beta > 1.0, "decay base must exceed 1");
        assert!(params.eps > 0.0, "radius threshold must be positive");
        assert!(params.mu > 0.0, "core weight threshold must be positive");
        assert!(
            params.potential_factor > 0.0 && params.potential_factor <= 1.0,
            "potential factor must be in (0, 1]"
        );
        DenStream { params }
    }

    /// The active parameters.
    pub fn params(&self) -> &DenStreamParams {
        &self.params
    }

    fn lambda(&self, dt: f64) -> f64 {
        self.params.beta.powf(-dt)
    }

    fn potential_threshold(&self) -> f64 {
        self.params.potential_factor * self.params.mu
    }

    /// DenStream's outlier lower-weight bound `ξ(t, t_0)`: the minimum
    /// weight an outlier micro-cluster created at `t_0` must have
    /// accumulated by `t` to still be on track to become potential.
    fn outlier_bound(&self, now_secs: f64, created_secs: f64) -> f64 {
        let tp = self.params.prune_period_secs();
        let num = self.lambda(now_secs - created_secs + tp) - 1.0;
        let den = self.lambda(tp) - 1.0;
        if den == 0.0 {
            1.0
        } else {
            num / den
        }
    }

    fn prune(&self, model: &mut DenStreamModel, now: Timestamp) {
        let threshold = self.potential_threshold();
        let now_secs = now.secs();
        model.mcs.retain(|_, mc| {
            if mc.potential {
                mc.cf.weight() >= threshold
            } else {
                mc.cf.weight() >= self.outlier_bound(now_secs, mc.cf.created_at().secs())
            }
        });
        model.last_prune_secs = now_secs;
    }
}

impl StreamClustering for DenStream {
    type Model = DenStreamModel;
    type Sketch = CfVector;

    fn name(&self) -> &str {
        "denstream"
    }

    fn init(&self, records: &[Record]) -> Result<DenStreamModel> {
        if records.is_empty() {
            return Err(DistStreamError::EmptyStream);
        }
        // Sequentially absorb the initial records (the DenStream paper runs
        // DBSCAN on the first points; incremental absorption with the same
        // ε bound produces the equivalent micro-cluster seeding).
        let mut model = DenStreamModel::default();
        for record in records {
            match self.assign(&model, record) {
                Assignment::Existing(id) => {
                    let mc = model
                        .mcs
                        .get_mut(&id)
                        .ok_or(DistStreamError::UnknownMicroCluster { id })?;
                    let dt = record.timestamp.saturating_since(mc.cf.updated_at());
                    let lambda = self.lambda(dt);
                    mc.cf.insert(record, lambda);
                }
                Assignment::New(_) => {
                    model.insert_new(DenStreamMc {
                        cf: CfVector::from_record(record),
                        potential: false,
                    });
                }
            }
        }
        // Promote heavy seeds.
        let threshold = self.potential_threshold();
        for mc in model.mcs.values_mut() {
            if mc.cf.weight() >= threshold {
                mc.potential = true;
            }
        }
        Ok(model)
    }

    fn assign(&self, model: &DenStreamModel, record: &Record) -> Assignment {
        // Try the nearest potential micro-cluster first, then the nearest
        // outlier micro-cluster; accept whichever keeps the radius within ε.
        for want_potential in [true, false] {
            let candidate = model
                .mcs
                .iter()
                .filter(|(_, mc)| mc.potential == want_potential)
                .map(|(id, mc)| (*id, mc.cf.centroid().squared_distance(&record.point)))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((id, _)) = candidate {
                if model.mcs[&id].cf.radius_with(&record.point) <= self.params.eps {
                    return Assignment::Existing(id);
                }
            }
        }
        Assignment::New(record.id)
    }

    fn searcher<'m>(&'m self, model: &'m DenStreamModel) -> Searcher<'m> {
        // One flattened-centroid kernel per model snapshot, with the
        // potential/outlier role mask alongside so the two preference passes
        // of `assign` become filtered scans over the same dense buffer.
        let mut kernel = CentroidKernel::with_capacity(
            model.mcs.len(),
            model.mcs.values().next().map_or(0, |mc| mc.cf.dims()),
        );
        let mut potential = Vec::with_capacity(model.mcs.len());
        for (id, mc) in model.mcs.iter() {
            kernel.push_cf(*id, &mc.cf);
            potential.push(mc.potential);
        }
        Box::new(move |record| {
            for want_potential in [true, false] {
                let candidate = kernel
                    .nearest_squared_filtered(&record.point, |idx| potential[idx] == want_potential)
                    .map(|(idx, _)| kernel.id(idx));
                if let Some(id) = candidate {
                    if model.mcs[&id].cf.radius_with(&record.point) <= self.params.eps {
                        return Assignment::Existing(id);
                    }
                }
            }
            Assignment::New(record.id)
        })
    }

    fn sketch_of(&self, model: &DenStreamModel, id: MicroClusterId) -> CfVector {
        model.mcs[&id].cf.clone()
    }

    fn create(&self, record: &Record) -> CfVector {
        CfVector::from_record(record)
    }

    fn update(&self, sketch: &mut CfVector, record: &Record) {
        let dt = record.timestamp.saturating_since(sketch.updated_at());
        let lambda = self.lambda(dt);
        sketch.insert(record, lambda);
    }

    fn can_premerge(&self, a: &CfVector, b: &CfVector) -> bool {
        a.centroid().distance(&b.centroid()) <= self.params.eps
    }

    fn apply_global(
        &self,
        model: &mut DenStreamModel,
        updated: Vec<(MicroClusterId, CfVector)>,
        created: Vec<CfVector>,
        now: Timestamp,
    ) -> Result<()> {
        for (id, cf) in updated {
            if let Some(mc) = model.mcs.get_mut(&id) {
                mc.cf = cf;
            }
        }
        for cf in created {
            model.insert_new(DenStreamMc {
                cf,
                potential: false,
            });
        }
        // Role transitions on the stored (lazily decayed) weights.
        let threshold = self.potential_threshold();
        for mc in model.mcs.values_mut() {
            mc.potential = mc.cf.weight() >= threshold;
        }
        // Periodic maintenance: untouched micro-clusters are decayed lazily,
        // only at prune boundaries — decaying the whole model on every call
        // would make the one-record-at-a-time baseline O(n·d) per record,
        // which real DenStream implementations avoid the same way.
        if now.secs() - model.last_prune_secs >= self.params.prune_period_secs() {
            for mc in model.mcs.values_mut() {
                let dt = now.saturating_since(mc.cf.updated_at());
                if dt > 0.0 {
                    mc.cf.decay(self.lambda(dt), now);
                }
            }
            for mc in model.mcs.values_mut() {
                mc.potential = mc.cf.weight() >= threshold;
            }
            self.prune(model, now);
        }
        Ok(())
    }

    fn snapshot(&self, model: &DenStreamModel) -> Vec<WeightedPoint> {
        let potentials: Vec<WeightedPoint> = model
            .mcs
            .values()
            .filter(|mc| mc.potential)
            .map(|mc| mc.cf.to_weighted_point())
            .collect();
        if potentials.is_empty() {
            // Fall back to everything rather than an empty offline input.
            model
                .mcs
                .values()
                .map(|mc| mc.cf.to_weighted_point())
                .collect()
        } else {
            potentials
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diststream_types::Point;

    fn rec(id: u64, x: f64, t: f64) -> Record {
        Record::new(id, Point::from(vec![x]), Timestamp::from_secs(t))
    }

    fn algo() -> DenStream {
        DenStream::new(DenStreamParams::default())
    }

    #[test]
    fn prune_period_matches_denstream_formula() {
        let p = DenStreamParams::default();
        // β_p·μ = 2 → T_p = ⌈log_β 2⌉ = ⌈4⌉ for β = 2^0.25; floating-point
        // noise in powf/ln may push the pre-ceil value a hair above 4.
        let tp = p.prune_period_secs();
        assert!((4.0..=5.0).contains(&tp), "T_p = {tp}");
    }

    #[test]
    fn init_promotes_heavy_clusters() {
        let algo = algo();
        // 30 records at the same spot, same time: weight 30 ≥ 2.
        let records: Vec<Record> = (0..30).map(|i| rec(i, 0.0, 0.0)).collect();
        let model = algo.init(&records).unwrap();
        assert_eq!(model.potential_count(), 1);
        assert_eq!(model.outlier_count(), 0);
    }

    #[test]
    fn assign_prefers_potential_micro_clusters() {
        let algo = algo();
        let mut model = DenStreamModel::default();
        // A potential cluster at 0 and an outlier cluster slightly closer to
        // the probe point: the potential one is tried first and accepted.
        let mut heavy = CfVector::from_record(&rec(0, 0.0, 0.0));
        for i in 1..20 {
            heavy.insert(&rec(i, 0.0, 0.0), 1.0);
        }
        let p_id = model.insert_new(DenStreamMc {
            cf: heavy,
            potential: true,
        });
        model.insert_new(DenStreamMc {
            cf: CfVector::from_record(&rec(20, 0.4, 0.0)),
            potential: false,
        });
        let probe = rec(21, 0.3, 1.0);
        assert_eq!(algo.assign(&model, &probe), Assignment::Existing(p_id));
    }

    #[test]
    fn assign_many_matches_per_record_assign() {
        let algo = algo();
        // Seed a model holding both potential and outlier micro-clusters at
        // interleaved positions so probes hit every branch of `assign`.
        let mut model = DenStreamModel::default();
        for (k, &(x, potential)) in [
            (0.0, true),
            (0.4, false),
            (2.0, true),
            (2.6, false),
            (5.0, false),
            (7.0, true),
        ]
        .iter()
        .enumerate()
        {
            let base = (k * 30) as u64;
            let mut cf = CfVector::from_record(&rec(base, x, 0.0));
            if potential {
                for j in 1..20 {
                    cf.insert(&rec(base + j, x, 0.0), 1.0);
                }
            }
            model.insert_new(DenStreamMc { cf, potential });
        }
        assert!(model.potential_count() > 0 && model.outlier_count() > 0);
        let probes: Vec<Record> = (0..150)
            .map(|i| rec(1000 + i, (i % 23) as f64 * 0.35, 4.0 + i as f64 * 0.01))
            .collect();
        let batched = algo.assign_many(&model, &probes);
        for (r, got) in probes.iter().zip(batched) {
            assert_eq!(got, algo.assign(&model, r), "record {:?}", r.id);
        }
    }

    #[test]
    fn assign_rejects_radius_violations() {
        let algo = algo();
        let mut model = DenStreamModel::default();
        model.insert_new(DenStreamMc {
            cf: CfVector::from_record(&rec(0, 0.0, 0.0)),
            potential: true,
        });
        // Tentative radius after inserting x=10 is 5 > ε=1 → outlier.
        assert_eq!(algo.assign(&model, &rec(1, 10.0, 1.0)), Assignment::New(1));
    }

    #[test]
    fn update_decays_by_arrival_interval() {
        let algo = algo();
        let mut cf = algo.create(&rec(0, 1.0, 0.0));
        algo.update(&mut cf, &rec(1, 1.0, 4.0));
        // After 4s at β = 2^0.25: λ = 2^{-1} = 0.5 → weight 1×0.5 + 1 = 1.5.
        assert!((cf.weight() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn global_update_promotes_and_demotes() {
        let algo = algo();
        let mut model = DenStreamModel::default();
        let id = model.insert_new(DenStreamMc {
            cf: CfVector::from_record(&rec(0, 0.0, 0.0)),
            potential: false,
        });
        // Updated sketch got heavy → promoted.
        let mut heavy = CfVector::from_record(&rec(0, 0.0, 0.0));
        for i in 1..5 {
            heavy.insert(&rec(i, 0.0, 0.0), 1.0);
        }
        algo.apply_global(&mut model, vec![(id, heavy)], vec![], Timestamp::ZERO)
            .unwrap();
        assert_eq!(model.potential_count(), 1);
        // Long silence decays it below threshold → demoted/pruned.
        algo.apply_global(&mut model, vec![], vec![], Timestamp::from_secs(50.0))
            .unwrap();
        assert_eq!(model.potential_count(), 0);
    }

    #[test]
    fn stale_outliers_pruned() {
        let algo = algo();
        let mut model = DenStreamModel::default();
        model.insert_new(DenStreamMc {
            cf: CfVector::from_record(&rec(0, 0.0, 0.0)),
            potential: false,
        });
        // Far beyond T_p with weight ~0 → pruned by the ξ bound.
        algo.apply_global(&mut model, vec![], vec![], Timestamp::from_secs(100.0))
            .unwrap();
        assert!(model.is_empty());
    }

    #[test]
    fn snapshot_prefers_potentials() {
        let algo = algo();
        let records: Vec<Record> = (0..40)
            .map(|i| rec(i, if i < 30 { 0.0 } else { 50.0 + i as f64 * 3.0 }, 0.0))
            .collect();
        let model = algo.init(&records).unwrap();
        assert!(model.potential_count() >= 1);
        assert_eq!(algo.snapshot(&model).len(), model.potential_count());
    }

    #[test]
    fn fresh_outliers_survive_pruning() {
        let algo = algo();
        let mut model = DenStreamModel::default();
        let created = vec![CfVector::from_record(&rec(0, 0.0, 10.0))];
        algo.apply_global(&mut model, vec![], created, Timestamp::from_secs(10.0))
            .unwrap();
        assert_eq!(model.len(), 1);
    }

    #[test]
    #[should_panic(expected = "decay base")]
    fn rejects_non_decaying_beta() {
        let _ = DenStream::new(DenStreamParams {
            beta: 1.0,
            ..Default::default()
        });
    }
}

//! ClusTree (Kranen et al., ICDM 2009) on the DistStream APIs.
//!
//! ClusTree keeps decayed CF micro-clusters indexed by a hierarchical CF
//! tree ([`CfTree`]); record insertion descends the tree greedily, making
//! the closest-micro-cluster search logarithmic rather than linear — the
//! source of the 1.1–1.3× throughput edge the paper measures for the
//! tree/grid algorithms (§VII-E).
//!
//! Adaptation note (recorded in DESIGN.md): the original ClusTree threads
//! "hitchhiker" buffers through interior nodes for anytime insertion. Under
//! DistStream's mini-batch model, inserts happen in bulk at the global
//! update, so this implementation maintains the authoritative micro-cluster
//! set in a map, rebuilds the CF-tree index at every global update, and
//! uses the tree for all assignment searches — the same search structure
//! and cost profile without per-record anytime buffering.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use diststream_core::{Assignment, MicroClusterId, StreamClustering, WeightedPoint};
use diststream_types::{DistStreamError, Record, Result, Timestamp};

use crate::cf::CfVector;
use crate::cftree::CfTree;

/// Tuning parameters for [`ClusTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusTreeParams {
    /// CF-tree node fanout (the original uses 3).
    pub fanout: usize,
    /// Maximum number of leaf micro-clusters (memory bound); the closest
    /// pair is merged when exceeded.
    pub max_micro_clusters: usize,
    /// Maximum-boundary factor over the micro-cluster RMS radius.
    pub boundary_factor: f64,
    /// Boundary for singleton micro-clusters (whose RMS radius is zero).
    pub singleton_radius: f64,
    /// Decay base `β` (> 1).
    pub beta: f64,
    /// Micro-clusters lighter than this are dropped at maintenance.
    pub min_weight: f64,
    /// Centroid distance below which new outlier micro-clusters pre-merge.
    pub premerge_distance: f64,
    /// Seconds between maintenance passes (decay sweep, pruning, and index
    /// rebuild). Between passes new entries are inserted into the tree
    /// incrementally and interior summaries may be slightly stale — the
    /// anytime spirit of ClusTree.
    pub maintenance_secs: f64,
}

impl Default for ClusTreeParams {
    fn default() -> Self {
        ClusTreeParams {
            fanout: 3,
            max_micro_clusters: 100,
            boundary_factor: 2.0,
            singleton_radius: 1.0,
            beta: 2f64.powf(0.25),
            min_weight: 0.05,
            premerge_distance: 1.0,
            maintenance_secs: 5.0,
        }
    }
}

/// The ClusTree model: authoritative micro-cluster map plus the CF-tree
/// search index (rebuilt at each global update).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusTreeModel {
    entries: BTreeMap<MicroClusterId, CfVector>,
    tree: CfTree,
    next_id: MicroClusterId,
    last_maintenance_secs: f64,
}

impl ClusTreeModel {
    /// Number of leaf micro-clusters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the model holds no micro-clusters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Height of the CF-tree index.
    pub fn tree_height(&self) -> usize {
        self.tree.height()
    }

    /// Iterates over `(id, micro-cluster)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&MicroClusterId, &CfVector)> {
        self.entries.iter()
    }
}

/// ClusTree implemented through the four DistStream APIs.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::{ClusTree, ClusTreeParams};
/// use diststream_core::StreamClustering;
/// use diststream_types::{Point, Record, Timestamp};
///
/// let algo = ClusTree::new(ClusTreeParams::default());
/// let init: Vec<Record> = (0..40)
///     .map(|i| Record::new(i, Point::from(vec![(i % 4) as f64 * 10.0]), Timestamp::from_secs(i as f64 * 0.1)))
///     .collect();
/// let model = algo.init(&init)?;
/// assert!(model.len() >= 4);
/// assert!(model.tree_height() >= 2);
/// # Ok::<(), diststream_types::DistStreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusTree {
    params: ClusTreeParams,
}

impl ClusTree {
    /// Creates ClusTree with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2`, the budget is zero, or `beta ≤ 1`.
    pub fn new(params: ClusTreeParams) -> Self {
        assert!(params.fanout >= 2, "fanout must be at least 2");
        assert!(
            params.max_micro_clusters > 0,
            "micro-cluster budget must be at least 1"
        );
        assert!(params.beta > 1.0, "decay base must exceed 1");
        ClusTree { params }
    }

    /// The active parameters.
    pub fn params(&self) -> &ClusTreeParams {
        &self.params
    }

    fn lambda(&self, dt: f64) -> f64 {
        self.params.beta.powf(-dt)
    }

    fn boundary(&self, cf: &CfVector) -> f64 {
        let rms = cf.rms_radius();
        if cf.weight() > 1.0 && rms > 0.0 {
            self.params.boundary_factor * rms
        } else {
            self.params.singleton_radius
        }
    }

    fn rebuild_tree(&self, model: &mut ClusTreeModel) {
        model.tree = CfTree::bulk(
            self.params.fanout,
            model
                .entries
                .iter()
                .map(|(id, cf)| (*id, cf.centroid(), cf.weight())),
        );
    }

    fn enforce_capacity(&self, model: &mut ClusTreeModel) -> Result<()> {
        while model.entries.len() > self.params.max_micro_clusters {
            // Merge the closest pair of leaf micro-clusters.
            let items: Vec<(MicroClusterId, diststream_types::Point)> = model
                .entries
                .iter()
                .map(|(id, cf)| (*id, cf.centroid()))
                .collect();
            let mut best: Option<(MicroClusterId, MicroClusterId, f64)> = None;
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let d = items[i].1.squared_distance(&items[j].1);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((items[i].0, items[j].0, d));
                    }
                }
            }
            let Some((keep, fold, _)) = best else { break };
            let folded = model
                .entries
                .remove(&fold)
                .ok_or(DistStreamError::UnknownMicroCluster { id: fold })?;
            model
                .entries
                .get_mut(&keep)
                .ok_or(DistStreamError::UnknownMicroCluster { id: keep })?
                .add(&folded);
        }
        Ok(())
    }
}

impl StreamClustering for ClusTree {
    type Model = ClusTreeModel;
    type Sketch = CfVector;

    fn name(&self) -> &str {
        "clustree"
    }

    fn init(&self, records: &[Record]) -> Result<ClusTreeModel> {
        if records.is_empty() {
            return Err(DistStreamError::EmptyStream);
        }
        let mut model = ClusTreeModel {
            entries: BTreeMap::new(),
            tree: CfTree::new(self.params.fanout),
            next_id: 0,
            last_maintenance_secs: 0.0,
        };
        for record in records {
            match self.assign(&model, record) {
                Assignment::Existing(id) => {
                    let cf = model
                        .entries
                        .get_mut(&id)
                        .ok_or(DistStreamError::UnknownMicroCluster { id })?;
                    let dt = record.timestamp.saturating_since(cf.updated_at());
                    let lambda = self.lambda(dt);
                    cf.insert(record, lambda);
                }
                Assignment::New(_) => {
                    let id = model.next_id;
                    model.next_id += 1;
                    let cf = CfVector::from_record(record);
                    model.tree.insert(id, cf.centroid(), cf.weight());
                    model.entries.insert(id, cf);
                }
            }
        }
        self.enforce_capacity(&mut model)?;
        self.rebuild_tree(&mut model);
        Ok(model)
    }

    fn assign(&self, model: &ClusTreeModel, record: &Record) -> Assignment {
        // Tree-based search: greedy descent instead of a linear scan. The
        // index may reference entries merged away since the last rebuild;
        // those lookups fall through to outlier creation.
        match model.tree.nearest(&record.point) {
            Some((id, dist)) => match model.entries.get(&id) {
                Some(cf) if dist <= self.boundary(cf) => Assignment::Existing(id),
                _ => Assignment::New(record.id),
            },
            None => Assignment::New(record.id),
        }
    }

    fn sketch_of(&self, model: &ClusTreeModel, id: MicroClusterId) -> CfVector {
        model.entries[&id].clone()
    }

    fn create(&self, record: &Record) -> CfVector {
        CfVector::from_record(record)
    }

    fn update(&self, sketch: &mut CfVector, record: &Record) {
        let dt = record.timestamp.saturating_since(sketch.updated_at());
        let lambda = self.lambda(dt);
        sketch.insert(record, lambda);
    }

    fn can_premerge(&self, a: &CfVector, b: &CfVector) -> bool {
        a.centroid().distance(&b.centroid()) <= self.params.premerge_distance
    }

    fn apply_global(
        &self,
        model: &mut ClusTreeModel,
        updated: Vec<(MicroClusterId, CfVector)>,
        created: Vec<CfVector>,
        now: Timestamp,
    ) -> Result<()> {
        // An update's target may have been capacity-merged or pruned away
        // since the (possibly one-update-stale) assignment snapshot.
        // Re-inserting the dead id would resurrect an entry the tree index
        // no longer knows about and push the model over budget, forcing an
        // extra O(n²·d) closest-pair merge per orphan; folding the orphan
        // into its nearest surviving entry sends the mass where the
        // capacity merge sent it, at one O(n·d) scan.
        for (id, cf) in updated {
            match model.entries.get_mut(&id) {
                Some(slot) => *slot = cf,
                None => {
                    let centroid = cf.centroid();
                    let nearest = model
                        .entries
                        .iter()
                        .map(|(eid, e)| (*eid, e.centroid().squared_distance(&centroid)))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .map(|(eid, _)| eid);
                    if let Some(eid) = nearest {
                        model
                            .entries
                            .get_mut(&eid)
                            .ok_or(DistStreamError::UnknownMicroCluster { id: eid })?
                            .add(&cf);
                    }
                }
            }
        }
        // Insert one at a time, restoring the budget after each insertion:
        // merges are irreversible, so application order matters (§IV-C2).
        // New entries also join the search index incrementally so the next
        // batch's assignment can find them.
        for cf in created {
            let id = model.next_id;
            model.next_id += 1;
            model.tree.insert(id, cf.centroid(), cf.weight());
            model.entries.insert(id, cf);
            self.enforce_capacity(model)?;
        }
        // Periodic maintenance: decay sweep, pruning, and a fresh index.
        // Doing this on every call would charge the one-record-at-a-time
        // baseline O(n·d + n·log n) per record.
        if now.secs() - model.last_maintenance_secs >= self.params.maintenance_secs {
            for cf in model.entries.values_mut() {
                let dt = now.saturating_since(cf.updated_at());
                if dt > 0.0 {
                    cf.decay(self.lambda(dt), now);
                }
            }
            let min_weight = self.params.min_weight;
            model.entries.retain(|_, cf| cf.weight() >= min_weight);
            self.enforce_capacity(model)?;
            self.rebuild_tree(model);
            model.last_maintenance_secs = now.secs();
        }
        Ok(())
    }

    fn snapshot(&self, model: &ClusTreeModel) -> Vec<WeightedPoint> {
        model
            .entries
            .values()
            .map(CfVector::to_weighted_point)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diststream_types::Point;

    fn rec(id: u64, x: f64, t: f64) -> Record {
        Record::new(id, Point::from(vec![x]), Timestamp::from_secs(t))
    }

    fn algo() -> ClusTree {
        ClusTree::new(ClusTreeParams::default())
    }

    #[test]
    fn init_builds_searchable_tree() {
        let a = algo();
        let records: Vec<Record> = (0..30)
            .map(|i| rec(i, (i % 6) as f64 * 20.0, i as f64 * 0.1))
            .collect();
        let model = a.init(&records).unwrap();
        assert_eq!(model.len(), 6);
        assert!(model.tree_height() >= 2);
    }

    #[test]
    fn assign_descends_tree() {
        let a = algo();
        let records: Vec<Record> = (0..12)
            .map(|i| rec(i, (i % 4) as f64 * 50.0, 0.0))
            .collect();
        let model = a.init(&records).unwrap();
        assert!(matches!(
            a.assign(&model, &rec(100, 50.3, 1.0)),
            Assignment::Existing(_)
        ));
        assert!(matches!(
            a.assign(&model, &rec(101, 500.0, 1.0)),
            Assignment::New(_)
        ));
    }

    #[test]
    fn capacity_merges_closest_pair() {
        let a = ClusTree::new(ClusTreeParams {
            max_micro_clusters: 2,
            ..Default::default()
        });
        let mut model = a.init(&[rec(0, 0.0, 0.0), rec(1, 100.0, 0.0)]).unwrap();
        // Two new clusters near 100 → merge pressure keeps the budget.
        let created = vec![
            CfVector::from_record(&rec(2, 103.0, 1.0)),
            CfVector::from_record(&rec(3, 106.0, 1.0)),
        ];
        a.apply_global(&mut model, vec![], created, Timestamp::from_secs(1.0))
            .unwrap();
        assert_eq!(model.len(), 2);
        // The far-apart 0.0 cluster survives; the 100-ish ones merged.
        let centroids: Vec<f64> = model.iter().map(|(_, cf)| cf.centroid()[0]).collect();
        assert!(centroids.iter().any(|&c| c < 1.0));
    }

    #[test]
    fn decayed_entries_dropped() {
        let a = algo();
        let mut model = a.init(&[rec(0, 0.0, 0.0)]).unwrap();
        a.apply_global(&mut model, vec![], vec![], Timestamp::from_secs(100.0))
            .unwrap();
        assert!(model.is_empty());
        assert_eq!(model.tree_height(), 0);
    }

    #[test]
    fn tree_rebuilt_after_global_update() {
        let a = algo();
        let mut model = a.init(&[rec(0, 0.0, 0.0)]).unwrap();
        let created: Vec<CfVector> = (1..10)
            .map(|i| CfVector::from_record(&rec(i, i as f64 * 30.0, 0.5)))
            .collect();
        a.apply_global(&mut model, vec![], created, Timestamp::from_secs(0.5))
            .unwrap();
        assert_eq!(model.len(), 10);
        assert!(model.tree_height() >= 2);
        // Greedy descent is approximate: most entries must resolve to
        // themselves, and no lookup may stray beyond the 30-unit spacing.
        let mut exact = 0;
        for (_, cf) in model.iter() {
            let (_, dist) = model.tree.nearest(&cf.centroid()).unwrap();
            assert!(dist <= 30.0 + 1e-9, "lookup strayed: {dist}");
            if dist < 1e-9 {
                exact += 1;
            }
        }
        assert!(exact >= 7, "only {exact}/10 entries resolved exactly");
    }

    #[test]
    fn update_decays_by_interval() {
        let a = algo();
        let mut cf = a.create(&rec(0, 1.0, 0.0));
        a.update(&mut cf, &rec(1, 1.0, 4.0));
        assert!((cf.weight() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_matches_entries() {
        let a = algo();
        let model = a.init(&[rec(0, 0.0, 0.0), rec(1, 50.0, 0.0)]).unwrap();
        assert_eq!(a.snapshot(&model).len(), 2);
    }
}

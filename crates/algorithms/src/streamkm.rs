//! A fifth algorithm on the DistStream APIs: decayed leader–follower online
//! k-means.
//!
//! The paper argues its four APIs cover *any* online-offline stream
//! clustering algorithm, "because such algorithms only differ in their
//! micro-cluster representations and micro-cluster update functions" (§VI).
//! This module is the existence proof beyond the paper's four: a
//! streaming-k-means-style algorithm (one decayed centroid per
//! micro-cluster, leader–follower creation, closest-pair merging under a
//! capacity bound) implemented purely through the same trait — no executor
//! changes required.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use diststream_core::{Assignment, MicroClusterId, StreamClustering, WeightedPoint};
use diststream_types::{DistStreamError, Point, Record, Result, Timestamp};

use crate::cf::CfVector;
use crate::offline::{kmeans, KmeansParams};

/// Tuning parameters for [`StreamKMeans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamKMeansParams {
    /// Maximum number of micro-centroids.
    pub max_centroids: usize,
    /// Leader radius: a record farther than this from every centroid founds
    /// a new one.
    pub radius: f64,
    /// Decay base `β` (> 1): centroid weights decay as `β^{-Δt}`.
    pub beta: f64,
    /// Centroids lighter than this are dropped at global update.
    pub min_weight: f64,
    /// Seed for the k-means initialization.
    pub seed: u64,
}

impl Default for StreamKMeansParams {
    fn default() -> Self {
        StreamKMeansParams {
            max_centroids: 100,
            radius: 1.0,
            beta: 2f64.powf(0.25),
            min_weight: 0.05,
            seed: 0x5EED,
        }
    }
}

/// The model: an id-keyed set of decayed centroid sketches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StreamKMeansModel {
    centroids: BTreeMap<MicroClusterId, CfVector>,
    next_id: MicroClusterId,
}

impl StreamKMeansModel {
    /// Number of live micro-centroids.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Whether the model holds no centroids.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Iterates over `(id, sketch)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&MicroClusterId, &CfVector)> {
        self.centroids.iter()
    }
}

/// Decayed leader–follower online k-means through the four DistStream APIs.
///
/// # Examples
///
/// ```
/// use diststream_algorithms::{StreamKMeans, StreamKMeansParams};
/// use diststream_core::StreamClustering;
/// use diststream_types::{Point, Record, Timestamp};
///
/// let algo = StreamKMeans::new(StreamKMeansParams {
///     max_centroids: 8,
///     radius: 1.0,
///     ..Default::default()
/// });
/// let init: Vec<Record> = (0..20)
///     .map(|i| Record::new(i, Point::from(vec![(i % 4) as f64 * 10.0]), Timestamp::from_secs(i as f64 * 0.1)))
///     .collect();
/// let model = algo.init(&init)?;
/// assert!(model.len() >= 4 && model.len() <= 8);
/// # Ok::<(), diststream_types::DistStreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamKMeans {
    params: StreamKMeansParams,
}

impl StreamKMeans {
    /// Creates the algorithm with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `max_centroids` is zero, `radius ≤ 0`, or `beta ≤ 1`.
    pub fn new(params: StreamKMeansParams) -> Self {
        assert!(params.max_centroids > 0, "centroid budget must be positive");
        assert!(params.radius > 0.0, "leader radius must be positive");
        assert!(params.beta > 1.0, "decay base must exceed 1");
        StreamKMeans { params }
    }

    /// The active parameters.
    pub fn params(&self) -> &StreamKMeansParams {
        &self.params
    }

    fn lambda(&self, dt: f64) -> f64 {
        self.params.beta.powf(-dt)
    }

    fn enforce_capacity(&self, model: &mut StreamKMeansModel) -> Result<()> {
        while model.centroids.len() > self.params.max_centroids {
            let items: Vec<(MicroClusterId, Point)> = model
                .centroids
                .iter()
                .map(|(id, cf)| (*id, cf.centroid()))
                .collect();
            let mut best = (items[0].0, items[1].0, f64::INFINITY);
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    let d = items[i].1.squared_distance(&items[j].1);
                    if d < best.2 {
                        best = (items[i].0, items[j].0, d);
                    }
                }
            }
            let folded = model
                .centroids
                .remove(&best.1)
                .ok_or(DistStreamError::UnknownMicroCluster { id: best.1 })?;
            model
                .centroids
                .get_mut(&best.0)
                .ok_or(DistStreamError::UnknownMicroCluster { id: best.0 })?
                .add(&folded);
        }
        Ok(())
    }
}

impl StreamClustering for StreamKMeans {
    type Model = StreamKMeansModel;
    type Sketch = CfVector;

    fn name(&self) -> &str {
        "stream-kmeans"
    }

    fn init(&self, records: &[Record]) -> Result<StreamKMeansModel> {
        if records.is_empty() {
            return Err(DistStreamError::EmptyStream);
        }
        let points: Vec<WeightedPoint> = records
            .iter()
            .map(|r| WeightedPoint {
                point: r.point.clone(),
                weight: 1.0,
            })
            .collect();
        let mut km = KmeansParams::new(self.params.max_centroids);
        km.seed = self.params.seed;
        let clusters = kmeans(&points, km);
        let mut model = StreamKMeansModel::default();
        let mut by_cluster: BTreeMap<usize, CfVector> = BTreeMap::new();
        for (record, assigned) in records.iter().zip(clusters.assignment.iter()) {
            let c = assigned.ok_or_else(|| {
                DistStreamError::Invariant("k-means left an init point unassigned".into())
            })?;
            match by_cluster.get_mut(&c) {
                Some(cf) => cf.insert(record, 1.0),
                None => {
                    by_cluster.insert(c, CfVector::from_record(record));
                }
            }
        }
        for (_, cf) in by_cluster {
            let id = model.next_id;
            model.next_id += 1;
            model.centroids.insert(id, cf);
        }
        Ok(model)
    }

    fn assign(&self, model: &StreamKMeansModel, record: &Record) -> Assignment {
        let closest = model
            .centroids
            .iter()
            .map(|(id, cf)| (*id, cf.centroid().distance(&record.point)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match closest {
            Some((id, d)) if d <= self.params.radius => Assignment::Existing(id),
            _ => Assignment::New(record.id),
        }
    }

    fn sketch_of(&self, model: &StreamKMeansModel, id: MicroClusterId) -> CfVector {
        model.centroids[&id].clone()
    }

    fn create(&self, record: &Record) -> CfVector {
        CfVector::from_record(record)
    }

    fn update(&self, sketch: &mut CfVector, record: &Record) {
        let dt = record.timestamp.saturating_since(sketch.updated_at());
        let lambda = self.lambda(dt);
        sketch.insert(record, lambda);
    }

    fn can_premerge(&self, a: &CfVector, b: &CfVector) -> bool {
        a.centroid().distance(&b.centroid()) <= self.params.radius
    }

    fn apply_global(
        &self,
        model: &mut StreamKMeansModel,
        updated: Vec<(MicroClusterId, CfVector)>,
        created: Vec<CfVector>,
        now: Timestamp,
    ) -> Result<()> {
        for (id, cf) in updated {
            model.centroids.insert(id, cf);
        }
        for cf in created {
            let id = model.next_id;
            model.next_id += 1;
            model.centroids.insert(id, cf);
            self.enforce_capacity(model)?;
        }
        for cf in model.centroids.values_mut() {
            let dt = now.saturating_since(cf.updated_at());
            if dt > 0.0 {
                cf.decay(self.lambda(dt), now);
            }
        }
        let min_weight = self.params.min_weight;
        model.centroids.retain(|_, cf| cf.weight() >= min_weight);
        Ok(())
    }

    fn snapshot(&self, model: &StreamKMeansModel) -> Vec<WeightedPoint> {
        model
            .centroids
            .values()
            .map(CfVector::to_weighted_point)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diststream_core::{DistStreamJob, SequentialExecutor};
    use diststream_engine::{ExecutionMode, StreamingContext, VecSource};
    use diststream_types::ClusteringConfig;

    fn rec(id: u64, x: f64, t: f64) -> Record {
        Record::new(id, Point::from(vec![x]), Timestamp::from_secs(t))
    }

    fn algo() -> StreamKMeans {
        StreamKMeans::new(StreamKMeansParams {
            max_centroids: 10,
            radius: 1.0,
            ..Default::default()
        })
    }

    fn stream(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                rec(
                    i,
                    (i % 4) as f64 * 6.0 + (i % 3) as f64 * 0.1,
                    i as f64 * 0.2,
                )
            })
            .collect()
    }

    #[test]
    fn init_respects_budget() {
        let model = algo().init(&stream(50)).unwrap();
        assert!(model.len() <= 10);
        assert!(!model.is_empty());
    }

    #[test]
    fn leader_rule_creates_new_centroids() {
        let a = algo();
        let model = a.init(&[rec(0, 0.0, 0.0)]).unwrap();
        assert!(matches!(
            a.assign(&model, &rec(1, 0.5, 1.0)),
            Assignment::Existing(_)
        ));
        assert!(matches!(
            a.assign(&model, &rec(2, 9.0, 1.0)),
            Assignment::New(_)
        ));
    }

    #[test]
    fn capacity_enforced_by_merging() {
        let a = StreamKMeans::new(StreamKMeansParams {
            max_centroids: 2,
            radius: 0.5,
            ..Default::default()
        });
        let mut model = a.init(&[rec(0, 0.0, 0.0), rec(1, 10.0, 0.0)]).unwrap();
        let created = vec![CfVector::from_record(&rec(2, 20.0, 1.0))];
        a.apply_global(&mut model, vec![], created, Timestamp::from_secs(1.0))
            .unwrap();
        assert!(model.len() <= 2);
    }

    #[test]
    fn stale_centroids_decay_away() {
        let a = algo();
        let mut model = a.init(&[rec(0, 0.0, 0.0)]).unwrap();
        a.apply_global(&mut model, vec![], vec![], Timestamp::from_secs(100.0))
            .unwrap();
        assert!(model.is_empty());
    }

    #[test]
    fn runs_under_every_executor() {
        let a = algo();
        let records = stream(400);
        // Sequential baseline.
        let seq = SequentialExecutor::new(&a);
        let mut model = a.init(&records[..40]).unwrap();
        for r in &records[40..] {
            seq.process_record(&mut model, r).unwrap();
        }
        assert!(!model.is_empty());
        // Mini-batch executor, parallelism invariance included.
        let run = |p: usize| {
            let ctx = StreamingContext::new(p, ExecutionMode::Simulated).unwrap();
            DistStreamJob::new(&a, &ctx, ClusteringConfig::default())
                .init_records(40)
                .run_to_end(VecSource::new(records.clone()))
                .unwrap()
                .model
        };
        let base = run(1);
        assert!(!base.is_empty());
        assert_eq!(run(8), base);
    }

    #[test]
    fn snapshot_feeds_offline_phase() {
        let a = algo();
        let model = a.init(&stream(100)).unwrap();
        let macros = kmeans(&a.snapshot(&model), KmeansParams::new(4));
        assert_eq!(macros.len(), 4);
    }
}

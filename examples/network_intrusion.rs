//! Network intrusion detection — the paper's §II motivating scenario.
//!
//! A KDD-99-like TCP connection stream contains normal traffic plus attack
//! waves that emerge, dominate, and vanish. DenStream on DistStream keeps
//! an up-to-date micro-cluster sketch; a "security analyst" invokes the
//! offline phase at every batch end to watch macro-clusters (attack
//! patterns) appear and disappear.
//!
//! ```sh
//! cargo run --example network_intrusion --release
//! ```

use diststream::algorithms::offline::{dbscan, DbscanParams};
use diststream::algorithms::{DenStream, DenStreamParams};
use diststream::core::{DistStreamJob, StreamClustering};
use diststream::datasets::kdd99_like;
use diststream::engine::{ExecutionMode, StreamingContext, VecSource};
use diststream::types::{ClusteringConfig, DistStreamError};

fn main() -> Result<(), DistStreamError> {
    // 20K-record analog of the KDD-99 intrusion stream (same shape:
    // 23 clusters, two large attack waves, sporadic rare attacks).
    let dataset = kdd99_like(20_000, 7);
    let scale = dataset.mean_intra_distance();
    let records = dataset.to_records(40.0); // ~500s of traffic

    let algo = DenStream::new(DenStreamParams {
        // Micro-cluster at clump granularity (~scale/3 radius per clump).
        eps: 0.5 * scale,
        ..Default::default()
    });
    let ctx = StreamingContext::new(8, ExecutionMode::Simulated)?;

    println!("monitoring TCP connection stream for intrusion patterns...\n");
    let mut previous_patterns = 0usize;
    DistStreamJob::new(&algo, &ctx, ClusteringConfig::default())
        .init_records(400)
        .run(VecSource::new(records), |report| {
            // Offline phase: density-connected micro-clusters form the
            // current traffic patterns.
            let snapshot = algo.snapshot(report.model);
            let patterns = dbscan(
                &snapshot,
                DbscanParams {
                    eps: 1.2 * scale,
                    min_weight: 8.0,
                },
            );
            let noise = patterns.assignment.iter().filter(|a| a.is_none()).count();
            let marker = match patterns.len().cmp(&previous_patterns) {
                std::cmp::Ordering::Greater => "  <-- new pattern emerging",
                std::cmp::Ordering::Less => "  <-- pattern vanished",
                std::cmp::Ordering::Equal => "",
            };
            println!(
                "t={:>5.0}s  {:>4} connections  {:>3} potential micro-clusters  {:>2} traffic patterns ({} outlier sketches){}",
                report.window_end.secs(),
                report.outcome.metrics.records,
                report.model.potential_count(),
                patterns.len(),
                noise,
                marker,
            );
            previous_patterns = patterns.len();
        })?;
    println!("\nstream ended; attack waves were visible as emerging/vanishing patterns above");
    Ok(())
}

//! The order-aware mechanism, demonstrated: the same stream, the same
//! algorithm, order-aware vs unordered mini-batch execution, scored with
//! CMM at every batch end.
//!
//! The stream is the dynamic KDD-99 analog — the dataset family where the
//! paper measures the largest quality gap. Watch the `unordered` column dip
//! during the attack waves while `order-aware` tracks the changes.
//!
//! ```sh
//! cargo run --example ordered_vs_unordered --release
//! ```

use diststream::algorithms::offline::{kmeans, KmeansParams};
use diststream::algorithms::{DenStream, DenStreamParams};
use diststream::core::{DistStreamJob, StreamClustering, UpdateOrdering};
use diststream::datasets::kdd99_like;
use diststream::engine::{ExecutionMode, StreamingContext, VecSource};
use diststream::quality::{cmm, nearest_assignment_bounded, CmmParams};
use diststream::types::{ClusteringConfig, DistStreamError, Record, Timestamp};

fn run(ordering: UpdateOrdering, records: &[Record], eps: f64, bound: f64) -> Vec<(f64, f64)> {
    let algo = DenStream::new(DenStreamParams {
        eps,
        ..Default::default()
    });
    let ctx = StreamingContext::new(4, ExecutionMode::Simulated).expect("valid context");
    let mut processed = 400usize;
    let mut series = Vec::new();
    // Pre-merge is a DistStream contribution (§V-C); the unordered baseline
    // does not have it.
    DistStreamJob::new(&algo, &ctx, ClusteringConfig::default())
        .init_records(400)
        .premerge(ordering == UpdateOrdering::OrderAware)
        .ordering(ordering)
        .run(VecSource::new(records.to_vec()), |report| {
            processed += report.outcome.metrics.records;
            let macros = kmeans(&algo.snapshot(report.model), KmeansParams::new(23));
            let params = CmmParams::default();
            let start = processed.saturating_sub(params.horizon);
            let window = &records[start..processed.min(records.len())];
            let assignment = nearest_assignment_bounded(window, &macros.centroids, bound);
            let score = cmm(window, &assignment, report.window_end, &params);
            series.push((report.window_end.secs(), score.cmm));
        })
        .expect("job run");
    series
}

fn main() -> Result<(), DistStreamError> {
    let dataset = kdd99_like(30_000, 42);
    let scale = dataset.mean_intra_distance();
    let records = dataset.to_records(61.0); // ~494s, the paper's duration

    println!("running order-aware executor...");
    let ordered = run(
        UpdateOrdering::OrderAware,
        &records,
        0.5 * scale,
        1.5 * scale,
    );
    println!("running unordered baseline...\n");
    let unordered = run(
        UpdateOrdering::Unordered,
        &records,
        0.5 * scale,
        1.5 * scale,
    );

    println!(
        "{:>10} {:>12} {:>12}",
        "stream(s)", "order-aware", "unordered"
    );
    let mut worst: (f64, f64) = (0.0, 1.0);
    for (&(t, o), &(_, u)) in ordered.iter().zip(unordered.iter()) {
        let bar = if u < o - 0.05 {
            "  <-- unordered lags the change"
        } else {
            ""
        };
        println!("{t:>10.0} {o:>12.3} {u:>12.3}{bar}");
        if u / o.max(1e-9) < worst.1 {
            worst = (t, u / o);
        }
    }
    let avg = |s: &[(f64, f64)]| s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64;
    println!(
        "\naverage CMM: order-aware {:.3}, unordered {:.3}; worst unordered/ordered ratio {:.2} at t={:.0}s",
        avg(&ordered),
        avg(&unordered),
        worst.1,
        worst.0,
    );
    let _ = Timestamp::ZERO; // (keep the import used in all feature configurations)
    Ok(())
}

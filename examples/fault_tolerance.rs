//! Driver fault tolerance: checkpoint, crash, recover, continue.
//!
//! The paper inherits fault tolerance from Spark Streaming (§VI); this
//! repository's substrate provides the same guarantee through periodic
//! binary-codec checkpoints plus a write-ahead replay log. This example
//! processes a stream, "crashes" the driver mid-stream, recovers from the
//! last checkpoint + log, and shows the recovered model is identical to the
//! lost one.
//!
//! ```sh
//! cargo run --example fault_tolerance --release
//! ```

use diststream::algorithms::{CluStream, CluStreamParams};
use diststream::core::{CheckpointingDriver, StreamClustering};
use diststream::datasets::covertype_like;
use diststream::engine::{ExecutionMode, MiniBatcher, StreamingContext, VecSource};
use diststream::types::DistStreamError;

fn main() -> Result<(), DistStreamError> {
    let dataset = covertype_like(8000, 21);
    let records = dataset.to_records(40.0);
    let algo = CluStream::new(CluStreamParams {
        max_micro_clusters: 70,
        premerge_distance: 0.5 * dataset.mean_intra_distance(),
        ..Default::default()
    });
    let ctx = StreamingContext::new(4, ExecutionMode::Simulated)?;

    let model = algo.init(&records[..300])?;
    let mut driver = CheckpointingDriver::new(&algo, &ctx, model, 3); // checkpoint every 3 batches

    let mut crashed_at = None;
    for (i, batch) in MiniBatcher::new(VecSource::new(records[300..].to_vec()), 10.0).enumerate() {
        driver.process_batch(batch)?;
        println!(
            "batch {:>2}: {:>3} micro-clusters | checkpoint @ batch {:>2} ({} bytes) | replay log {} batches",
            i,
            driver.model().len(),
            driver.checkpoint().batch_index,
            driver.checkpoint().len(),
            driver.replay_log_len(),
        );
        if i == 7 {
            crashed_at = Some(driver.model().clone());
            break; // 💥 the driver process dies here
        }
    }

    println!("\n-- driver crashed; restarting from checkpoint + replay log --\n");
    let recovered = driver.recover()?;
    let lost = crashed_at.expect("crash point recorded");
    assert_eq!(recovered, lost, "recovery must reproduce the lost model");
    println!(
        "recovered model: {} micro-clusters — identical to the state lost in the crash",
        recovered.len()
    );
    Ok(())
}

//! Quickstart: cluster a synthetic evolving stream with DistStream-CluStream
//! in a few lines.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use diststream::algorithms::offline::{kmeans, KmeansParams};
use diststream::algorithms::{CluStream, CluStreamParams};
use diststream::core::{DistStreamJob, StreamClustering};
use diststream::engine::{ExecutionMode, StreamingContext, VecSource};
use diststream::types::{ClusteringConfig, DistStreamError, Point, Record, Timestamp};

fn main() -> Result<(), DistStreamError> {
    // A little stream: four well-separated 2-D clusters, 20 records/s.
    let records: Vec<Record> = (0..2000)
        .map(|i| {
            let cluster = (i % 4) as f64;
            let jitter = ((i * 2654435761 % 1000) as f64 / 1000.0 - 0.5) * 0.8;
            Record::new(
                i,
                Point::from(vec![cluster * 5.0 + jitter, cluster * -3.0 + jitter]),
                Timestamp::from_secs(i as f64 / 20.0),
            )
        })
        .collect();

    // The algorithm: CluStream with a budget of 40 micro-clusters.
    let algo = CluStream::new(CluStreamParams {
        max_micro_clusters: 40,
        ..Default::default()
    });

    // The cluster: 4 task slots, simulated-cluster timing.
    let ctx = StreamingContext::new(4, ExecutionMode::Simulated)?;

    // Online phase: mini-batches of 10 virtual seconds, order-aware updates.
    let result = DistStreamJob::new(&algo, &ctx, ClusteringConfig::default())
        .init_records(100)
        .run(VecSource::new(records), |report| {
            println!(
                "batch {:>2} @ {:>5.0}s: {:>4} records, {} micro-clusters, {} outliers",
                report.batch_index,
                report.window_end.secs(),
                report.outcome.metrics.records,
                report.model.len(),
                report.outcome.outlier_records,
            );
        })?;

    // Offline phase: k-means over the micro-cluster snapshot.
    let macros = kmeans(&algo.snapshot(&result.model), KmeansParams::new(4));
    println!("\nfinal macro-clusters:");
    for (i, c) in macros.centroids.iter().enumerate() {
        println!("  cluster {i}: centroid {c:?}");
    }
    println!(
        "\nprocessed {} records at {:.0} records/s (simulated cluster time)",
        result.meter.records(),
        result.meter.records_per_sec()
    );
    Ok(())
}

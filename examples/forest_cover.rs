//! Forest cover mapping with grid-based D-Stream.
//!
//! A CoverType-like cartographic stream is clustered with D-Stream: records
//! map to grid cells in O(d) (no nearest-centroid scan), cell densities
//! decay, and sporadic cells are swept. The offline phase uses D-Stream's
//! native macro-clustering: grouping *adjacent* dense cells into regions.
//!
//! ```sh
//! cargo run --example forest_cover --release
//! ```

use diststream::algorithms::offline::adjacent_grid_clusters;
use diststream::algorithms::{DStream, DStreamParams};
use diststream::core::DistStreamJob;
use diststream::datasets::covertype_like;
use diststream::engine::{ExecutionMode, StreamingContext, VecSource};
use diststream::types::{ClusteringConfig, DistStreamError};

fn main() -> Result<(), DistStreamError> {
    let dataset = covertype_like(20_000, 11);
    let scale = dataset.mean_intra_distance();
    let dims = dataset.points[0].point.dims();
    let records = dataset.to_records(40.0);

    let algo = DStream::new(DStreamParams {
        cell_width: 6.0 * scale / (dims as f64).sqrt(),
        grid_dims: 6,
        expected_cells: 200,
        ..Default::default()
    });
    let ctx = StreamingContext::new(8, ExecutionMode::Simulated)?;

    println!("mapping forest cover types from streaming survey records...\n");
    let result = DistStreamJob::new(&algo, &ctx, ClusteringConfig::default())
        .init_records(400)
        .run(VecSource::new(records), |report| {
            if report.batch_index % 10 == 0 {
                println!(
                    "t={:>5.0}s  {:>4} records  {:>4} non-empty grid cells",
                    report.window_end.secs(),
                    report.outcome.metrics.records,
                    report.model.len(),
                );
            }
        })?;

    // Offline phase: D-Stream's native adjacency grouping of dense cells.
    let regions = adjacent_grid_clusters(&result.model, 10.0);
    println!(
        "\n{} grid cells grouped into {} cover-type regions:",
        result.model.len(),
        regions.len()
    );
    for (i, c) in regions.centroids.iter().enumerate() {
        let members = regions.assignment.iter().filter(|a| **a == Some(i)).count();
        println!(
            "  region {i}: {members} cells, centroid norm {:.2}",
            c.norm()
        );
    }
    Ok(())
}

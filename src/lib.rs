//! DistStream facade crate — re-exports the full public API of the
//! workspace. See the README for an overview and `examples/` for runnable
//! entry points.

#![forbid(unsafe_code)]

pub use diststream_algorithms as algorithms;
pub use diststream_core as core;
pub use diststream_datasets as datasets;
pub use diststream_engine as engine;
pub use diststream_quality as quality;
pub use diststream_telemetry as telemetry;
pub use diststream_types as types;
